"""Profiling toolchain: nvprof-style collection, NVBit divergence,
transfer-sparsity tracking, report rendering."""

import numpy as np
import pytest

from repro.gpu import (
    AccessPattern,
    KernelDescriptor,
    OpClass,
    SimulatedGPU,
)
from repro.profiling import (
    DivergenceInstrument,
    KernelProfiler,
    SparsityTracker,
    format_scaling,
    format_series,
    format_table,
)


def _desc(name="k", op_class=OpClass.ELEMENTWISE, threads=1 << 14, **kw):
    base = dict(name=name, op_class=op_class, threads=threads,
                bytes_read=float(threads * 4), bytes_written=float(threads * 4),
                fp32_flops=float(threads), int32_iops=float(threads * 4))
    base.update(kw)
    return KernelDescriptor(**base)


class TestKernelProfiler:
    def test_counts_every_launch(self, gpu):
        profiler = KernelProfiler().attach(gpu)
        for _ in range(5):
            gpu.launch(_desc())
        assert profiler.total_launches == 5
        assert profiler.kernels["k"].launches == 5

    def test_fifty_invocation_metric_rule(self, gpu):
        """The paper's rule: HW metrics sampled for <= 50 invocations per
        kernel, but the timeline covers everything."""
        profiler = KernelProfiler().attach(gpu)
        for _ in range(80):
            gpu.launch(_desc())
        stats = profiler.kernels["k"]
        assert stats.launches == 80
        assert stats.sampled_launches == 50
        assert stats.total_time_s > stats.sampled_time_s

    def test_op_breakdown_sums_to_one(self, gpu):
        profiler = KernelProfiler().attach(gpu)
        gpu.launch(_desc("a", OpClass.GEMM))
        gpu.launch(_desc("b", OpClass.SORT))
        shares = profiler.op_time_breakdown()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["GEMM"] > 0 and shares["Sort"] > 0

    def test_instruction_mix_sums_to_one(self, gpu):
        profiler = KernelProfiler().attach(gpu)
        gpu.launch(_desc())
        mix = profiler.instruction_mix()
        assert sum(mix.values()) == pytest.approx(1.0)
        assert mix["int32"] > mix["fp32"]  # 4 iops vs 1 flop per thread

    def test_throughput_positive(self, gpu):
        profiler = KernelProfiler().attach(gpu)
        gpu.launch(_desc(fp32_flops=1e9, int32_iops=2e9))
        th = profiler.throughput()
        assert th["gflops"] > 0 and th["giops"] > th["gflops"] * 0.5
        assert th["ipc"] > 0

    def test_stall_breakdown_normalized(self, gpu):
        profiler = KernelProfiler().attach(gpu)
        gpu.launch(_desc())
        assert sum(profiler.stall_breakdown().values()) == pytest.approx(1.0)

    def test_phase_breakdown(self, gpu):
        profiler = KernelProfiler().attach(gpu)
        gpu.launch(_desc("fwd"))
        gpu.launch(_desc("bwd", phase="backward"))
        shares = profiler.phase_breakdown()
        assert set(shares) == {"forward", "backward"}
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_per_op_class_metric(self, gpu):
        profiler = KernelProfiler().attach(gpu)
        gpu.launch(_desc("a", OpClass.GEMM))
        gpu.launch(_desc("b", OpClass.GATHER))
        per_op = profiler.per_op_class("l1_hit")
        assert "GEMM" in per_op and "Gather" in per_op

    def test_detach_stops_collection(self, gpu):
        profiler = KernelProfiler().attach(gpu)
        profiler.detach()
        gpu.launch(_desc())
        assert profiler.total_launches == 0

    def test_top_kernels_sorted(self, gpu):
        profiler = KernelProfiler().attach(gpu)
        gpu.launch(_desc("small", threads=64))
        gpu.launch(_desc("big", threads=1 << 20,
                         bytes_read=float(1 << 24), bytes_written=float(1 << 24)))
        top = profiler.top_kernels(2)
        assert top[0].name == "big"


class TestSparsityTracker:
    def test_value_weighted_average(self, gpu):
        tracker = SparsityTracker().attach(gpu)
        gpu.h2d(np.zeros(100, dtype=np.float32), "zeros")
        gpu.h2d(np.ones(300, dtype=np.float32), "ones")
        assert tracker.average_sparsity() == pytest.approx(0.25)

    def test_d2h_ignored(self, gpu):
        tracker = SparsityTracker().attach(gpu)
        gpu.d2h(np.zeros(10))
        assert tracker.samples == []

    def test_timeline_order(self, gpu):
        tracker = SparsityTracker().attach(gpu)
        gpu.h2d(np.zeros(4))
        gpu.h2d(np.ones(4))
        np.testing.assert_allclose(tracker.timeline(), [1.0, 0.0])

    def test_by_label(self, gpu):
        tracker = SparsityTracker().attach(gpu)
        gpu.h2d(np.zeros(4), "features")
        gpu.h2d(np.ones(4), "labels")
        by = tracker.by_label()
        assert by["features"] == 1.0 and by["labels"] == 0.0

    def test_periodicity_detects_cycles(self, gpu):
        tracker = SparsityTracker().attach(gpu)
        for _ in range(12):  # strictly periodic transfer pattern
            gpu.h2d(np.zeros(8))
            gpu.h2d(np.ones(8))
            gpu.h2d(np.concatenate([np.zeros(4), np.ones(4)]))
        assert tracker.periodicity_score() > 0.8

    def test_periodicity_low_for_constant(self, gpu):
        tracker = SparsityTracker().attach(gpu)
        for _ in range(20):
            gpu.h2d(np.ones(8))
        assert tracker.periodicity_score() == 0.0


class TestDivergenceInstrument:
    def test_weighted_by_loads(self, gpu):
        inst = DivergenceInstrument().attach(gpu)
        rng = np.random.default_rng(0)
        gpu.launch(_desc("irr", OpClass.GATHER, ldst_instrs=1e6,
                         access=AccessPattern.irregular(
                             rng.integers(0, 1 << 22, 4096), 4)))
        gpu.launch(_desc("seq", OpClass.COPY, ldst_instrs=1e3,
                         access=AccessPattern.irregular(np.arange(4096), 4)))
        # the heavy irregular kernel dominates the load-weighted fraction
        assert inst.divergent_load_fraction() > 0.9

    def test_by_category(self, gpu):
        inst = DivergenceInstrument().attach(gpu)
        gpu.launch(_desc("a", OpClass.GATHER))
        cats = inst.by_category()
        assert "Gather" in cats

    def test_lines_per_warp_at_least_one(self, gpu):
        inst = DivergenceInstrument().attach(gpu)
        gpu.launch(_desc())
        assert all(v >= 1.0 for v in inst.lines_per_warp().values())


class TestReports:
    def test_format_table_includes_mean(self):
        text = format_table({"A": {"x": 0.5}, "B": {"x": 0.7}}, ["x"],
                            percent=True)
        assert "mean" in text and "60.0%" in text

    def test_format_table_missing_cell(self):
        text = format_table({"A": {"x": 1.0}}, ["x", "y"], percent=False)
        assert "-" in text

    def test_format_series_sparkline(self):
        text = format_series({"w": np.linspace(0, 1, 50)})
        assert text.startswith("w")
        assert "%" in text  # scale annotation present

    def test_format_scaling_speedups(self):
        text = format_scaling({"W": {1: 2.0, 2: 1.0, 4: 0.5}})
        assert "2.00x" in text and "4.00x" in text
