"""Property tests for the queueing model (``repro.serve.queueing``).

The batcher's documented guarantees — conservation, FIFO ordering, size
bounds, the max-wait deadline, non-overlapping service — are checked
over randomized arrival schedules and batcher knobs with a synthetic
affine service-time model (no device; the properties are about the
queueing discipline, not kernel timing).
"""

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.serve.queueing import Request, run_queue  # noqa: E402
from repro.serve.server import _quantiles_us  # noqa: E402

settings.register_profile("serve", max_examples=80, deadline=None)
settings.load_profile("serve")


gaps_st = st.lists(
    st.floats(min_value=0.0, max_value=0.05,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=60)
batch_max_st = st.integers(min_value=1, max_value=12)
wait_st = st.floats(min_value=0.0, max_value=0.02,
                    allow_nan=False, allow_infinity=False)
base_st = st.floats(min_value=1e-6, max_value=0.01,
                    allow_nan=False, allow_infinity=False)
per_req_st = st.floats(min_value=0.0, max_value=0.002,
                       allow_nan=False, allow_infinity=False)


def _requests(gaps):
    t = 0.0
    out = []
    for i, g in enumerate(gaps):
        t += g
        out.append(Request(index=i, user=0, entity=i, arrival_s=t))
    return out


def _run(gaps, batch_max, max_wait_s, base_s, per_req_s):
    reqs = _requests(gaps)
    served, batches = run_queue(
        reqs, batch_max=batch_max, max_wait_s=max_wait_s,
        run_batch=lambda members, start_s:
            start_s + base_s + per_req_s * len(members))
    return reqs, served, batches


class TestQueueProperties:
    @given(gaps=gaps_st, batch_max=batch_max_st, max_wait_s=wait_st,
           base_s=base_st, per_req_s=per_req_st)
    def test_conservation(self, gaps, batch_max, max_wait_s, base_s,
                          per_req_s):
        reqs, served, batches = _run(gaps, batch_max, max_wait_s,
                                     base_s, per_req_s)
        # every request in == exactly one completion, partitioned by batch
        assert len(served) == len(reqs)
        assert sum(b.size for b in batches) == len(reqs)
        assert sorted(m for b in batches for m in b.members) \
            == [r.index for r in reqs]

    @given(gaps=gaps_st, batch_max=batch_max_st, max_wait_s=wait_st,
           base_s=base_st, per_req_s=per_req_st)
    def test_fifo_order(self, gaps, batch_max, max_wait_s, base_s,
                        per_req_s):
        # arrival order in == service order out: concatenating batch
        # members recovers 0..n-1 exactly (single priority class)
        _, _, batches = _run(gaps, batch_max, max_wait_s, base_s, per_req_s)
        flat = [m for b in batches for m in b.members]
        assert flat == list(range(len(flat)))

    @given(gaps=gaps_st, batch_max=batch_max_st, max_wait_s=wait_st,
           base_s=base_st, per_req_s=per_req_st)
    def test_size_bounds(self, gaps, batch_max, max_wait_s, base_s,
                         per_req_s):
        _, _, batches = _run(gaps, batch_max, max_wait_s, base_s, per_req_s)
        assert all(1 <= b.size <= batch_max for b in batches)

    @given(gaps=gaps_st, batch_max=batch_max_st, max_wait_s=wait_st,
           base_s=base_st, per_req_s=per_req_st)
    def test_max_wait_deadline(self, gaps, batch_max, max_wait_s, base_s,
                               per_req_s):
        # the batcher never *holds* a request past max_wait: each batch is
        # dispatched no later than its head's arrival + max_wait (service
        # may still start later if the server is busy — that's queueing
        # delay, not batcher hold time)
        reqs, _, batches = _run(gaps, batch_max, max_wait_s, base_s,
                                per_req_s)
        by_index = {r.index: r for r in reqs}
        for b in batches:
            head = by_index[b.members[0]]
            assert b.dispatch_s <= head.arrival_s + max_wait_s + 1e-12
            # no member is served before it arrives
            assert all(by_index[m].arrival_s <= b.start_s + 1e-12
                       for m in b.members)

    @given(gaps=gaps_st, batch_max=batch_max_st, max_wait_s=wait_st,
           base_s=base_st, per_req_s=per_req_st)
    def test_batches_never_overlap(self, gaps, batch_max, max_wait_s,
                                   base_s, per_req_s):
        _, _, batches = _run(gaps, batch_max, max_wait_s, base_s, per_req_s)
        for prev, cur in zip(batches, batches[1:]):
            assert cur.start_s >= prev.complete_s - 1e-12
            assert cur.start_s >= cur.dispatch_s - 1e-12

    @given(gaps=gaps_st, batch_max=batch_max_st, max_wait_s=wait_st,
           base_s=base_st, per_req_s=per_req_st)
    def test_latency_decomposition(self, gaps, batch_max, max_wait_s,
                                   base_s, per_req_s):
        _, served, _ = _run(gaps, batch_max, max_wait_s, base_s, per_req_s)
        for s in served:
            assert s.wait_s >= -1e-12
            assert s.compute_s > 0
            assert s.latency_s == pytest.approx(s.wait_s + s.compute_s)


class TestQuantiles:
    @given(values=st.lists(
        st.floats(min_value=0.0, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=200))
    def test_quantile_ordering(self, values):
        q = _quantiles_us(values)
        assert q["p50"] <= q["p95"] <= q["p99"] <= q["max"]
        assert q["max"] == pytest.approx(max(values) * 1e6)
        assert not any(math.isnan(v) for v in q.values())
