"""Analytical cache model behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import DEFAULT_SIMULATION, AccessPattern, KernelDescriptor, OpClass
from repro.gpu.caches import _fit_fraction, analyze


def _desc(**kw):
    base = dict(
        name="k", op_class=OpClass.ELEMENTWISE, threads=1 << 16,
        bytes_read=1 << 20, bytes_written=1 << 18,
    )
    base.update(kw)
    return KernelDescriptor(**base)


class TestFitFraction:
    def test_tiny_footprint_fits(self):
        assert _fit_fraction(1024, 128 * 1024) == 1.0

    def test_huge_footprint_streams(self):
        assert _fit_fraction(100 << 20, 128 * 1024) == 0.0

    def test_monotone_in_footprint(self):
        cap = 1 << 20
        values = [_fit_fraction(f, cap) for f in (1 << 18, 1 << 20, 1 << 22, 1 << 24)]
        assert values == sorted(values, reverse=True)

    @given(st.floats(1, 1e12), st.floats(1, 1e9))
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, footprint, capacity):
        assert 0.0 <= _fit_fraction(footprint, capacity) <= 1.0


class TestL1Model:
    def test_streaming_kernel_near_base_hit(self):
        mem = analyze(_desc(bytes_read=100 << 20, bytes_written=25 << 20), DEFAULT_SIMULATION)
        base = DEFAULT_SIMULATION.profile_for("ELEMENTWISE").l1_base_hit
        assert mem.l1_hit_rate == pytest.approx(base, abs=0.05)

    def test_no_reuse_means_no_residency_bonus(self):
        """Write-through L1: a tiny footprint without intra-kernel reuse
        still misses (producer data is never L1-resident)."""
        small = _desc(threads=256, bytes_read=4096, bytes_written=4096,
                      reuse_factor=1.0)
        mem = analyze(small, DEFAULT_SIMULATION)
        base = DEFAULT_SIMULATION.profile_for("ELEMENTWISE").l1_base_hit
        assert mem.l1_hit_rate <= base + 0.01

    def test_reuse_unlocks_residency(self):
        small = _desc(threads=256, bytes_read=4096, bytes_written=4096,
                      reuse_factor=3.0)
        none = _desc(threads=256, bytes_read=4096, bytes_written=4096,
                     reuse_factor=1.0)
        assert (
            analyze(small, DEFAULT_SIMULATION).l1_hit_rate
            > analyze(none, DEFAULT_SIMULATION).l1_hit_rate
        )

    def test_divergence_reduces_irregular_hit(self):
        rng = np.random.default_rng(0)
        scattered = _desc(
            op_class=OpClass.GATHER,
            access=AccessPattern.irregular(rng.integers(0, 1 << 22, 4096), 4),
        )
        local = _desc(
            op_class=OpClass.GATHER,
            access=AccessPattern.irregular(np.arange(4096), 4),
        )
        assert (
            analyze(scattered, DEFAULT_SIMULATION).l1_hit_rate
            < analyze(local, DEFAULT_SIMULATION).l1_hit_rate + 0.2
        )

    def test_hot_index_stream_gets_temporal_reuse(self):
        hot = _desc(
            op_class=OpClass.GATHER, threads=4096,
            bytes_read=1 << 14, bytes_written=1 << 14,
            access=AccessPattern.irregular(np.zeros(4096, dtype=np.int64), 4),
        )
        mem = analyze(hot, DEFAULT_SIMULATION)
        assert mem.l1_hit_rate > DEFAULT_SIMULATION.profile_for("GATHER").l1_base_hit


class TestL2AndDram:
    def test_dram_bytes_never_exceed_l2_bytes(self):
        mem = analyze(_desc(bytes_read=64 << 20), DEFAULT_SIMULATION)
        assert mem.dram_bytes <= mem.l2_bytes + 1e-6

    def test_fitting_footprint_raises_l2_hit(self):
        small = analyze(_desc(bytes_read=1 << 20, working_set_bytes=1 << 20),
                        DEFAULT_SIMULATION)
        big = analyze(_desc(bytes_read=256 << 20, working_set_bytes=256 << 20),
                      DEFAULT_SIMULATION)
        assert small.l2_hit_rate > big.l2_hit_rate

    def test_giant_streaming_write_spills_to_dram(self):
        mem = analyze(
            _desc(bytes_read=1 << 20, bytes_written=64 << 20), DEFAULT_SIMULATION
        )
        # at least ~half the written bytes must reach DRAM
        assert mem.dram_bytes > 0.4 * (64 << 20)

    def test_rates_bounded(self):
        for op in (OpClass.GEMM, OpClass.SORT, OpClass.SCATTER):
            mem = analyze(_desc(op_class=op), DEFAULT_SIMULATION)
            assert 0.0 <= mem.l1_hit_rate <= 1.0
            assert 0.0 <= mem.l2_hit_rate <= 1.0
