"""Same workload + same seed => byte-identical kernel streams and losses.

This is the premise the golden snapshots stand on: if two in-process runs
diverge, cross-process snapshot comparison is meaningless.
"""

from __future__ import annotations

import pytest

from repro.testing import compare_fingerprints, fingerprint_workload

# cheapest representatives of the three framework styles: fused-SpMM (ARGA),
# gather/scatter batching (KGNNL), and per-node recursion (TLSTM)
CHEAP_KEYS = ("ARGA", "KGNNL", "TLSTM")


@pytest.mark.parametrize("key", CHEAP_KEYS)
def test_same_seed_same_stream(key):
    first = fingerprint_workload(key, scale="test", epochs=1, seed=0)
    second = fingerprint_workload(key, scale="test", epochs=1, seed=0)
    assert first["stream_digest"] == second["stream_digest"]
    assert first["losses"] == second["losses"]
    assert not compare_fingerprints(first, second)


def test_different_seed_different_stream():
    # Seed feeds parameter init and batch order; TLSTM's batch composition
    # determines its kernel stream, so a different seed must change the
    # digest (if it doesn't, the seed isn't actually plumbed through).
    base = fingerprint_workload("TLSTM", scale="test", epochs=1, seed=0)
    other = fingerprint_workload("TLSTM", scale="test", epochs=1, seed=1)
    assert base["stream_digest"] != other["stream_digest"]
