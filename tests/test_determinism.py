"""Same workload + same seed => byte-identical kernel streams and losses.

This is the premise the golden snapshots stand on: if two in-process runs
diverge, cross-process snapshot comparison is meaningless.
"""

from __future__ import annotations

import pytest

from repro.testing import compare_fingerprints, fingerprint_workload

# cheapest representatives of the three framework styles: fused-SpMM (ARGA),
# gather/scatter batching (KGNNL), and per-node recursion (TLSTM)
CHEAP_KEYS = ("ARGA", "KGNNL", "TLSTM")


@pytest.mark.parametrize("key", CHEAP_KEYS)
def test_same_seed_same_stream(key):
    first = fingerprint_workload(key, scale="test", epochs=1, seed=0)
    second = fingerprint_workload(key, scale="test", epochs=1, seed=0)
    assert first["stream_digest"] == second["stream_digest"]
    assert first["losses"] == second["losses"]
    assert not compare_fingerprints(first, second)


def test_different_seed_different_stream():
    # Seed feeds parameter init and batch order; TLSTM's batch composition
    # determines its kernel stream, so a different seed must change the
    # digest (if it doesn't, the seed isn't actually plumbed through).
    base = fingerprint_workload("TLSTM", scale="test", epochs=1, seed=0)
    other = fingerprint_workload("TLSTM", scale="test", epochs=1, seed=1)
    assert base["stream_digest"] != other["stream_digest"]


class TestPoolIsolation:
    """The premise above must survive the executor's process pool: workloads
    sharing a pool must not share RNG state or device event logs."""

    def test_pool_workers_do_not_share_state(self):
        from repro.testing import fingerprint_suite

        solo = {k: fingerprint_workload(k, scale="test", epochs=1, seed=0)
                for k in CHEAP_KEYS}
        # 2 workers, 3 workloads: at least one worker runs two workloads
        # back to back, so cross-contamination of the framework RNG or of a
        # device's launch/transfer logs would corrupt the second stream
        pooled = fingerprint_suite(list(CHEAP_KEYS), scale="test", epochs=1,
                                   seed=0, jobs=2, cache=None)
        for key in CHEAP_KEYS:
            assert pooled[key]["stream_digest"] == solo[key]["stream_digest"]
            assert pooled[key]["launch_count"] == solo[key]["launch_count"]
            assert pooled[key]["transfer_count"] == solo[key]["transfer_count"]
            assert pooled[key]["losses"] == solo[key]["losses"]

    def test_dirty_worker_state_cannot_leak_in(self):
        from repro.core import executor
        from repro.tensor import manual_seed

        solo = fingerprint_workload("TLSTM", scale="test", epochs=1, seed=0)
        manual_seed(999)  # simulate a worker left dirty by a previous task
        [again] = executor.run_tasks(
            [("fingerprint", dict(key="TLSTM", scale="test", epochs=1,
                                  seed=0))],
            jobs=1, cache=None,
        )
        assert again["stream_digest"] == solo["stream_digest"]
