"""Pinned regressions for gradient bugs the gradcheck harness surfaced."""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor, functional as F


def test_gather_backward_accumulates_duplicate_indices():
    # Gather.backward used np.put_along_axis, which OVERWRITES when the same
    # source slot is gathered twice; contributions must accumulate.
    x = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
    idx = np.array([[0, 1], [0, 1], [0, 2]])
    out = F.gather(x, idx, 0)
    out.backward(np.ones_like(out.data))
    expected = np.zeros((3, 2))
    np.add.at(expected, (idx, np.broadcast_to([0, 1], idx.shape)), 1.0)
    np.testing.assert_allclose(x.grad.data, expected)
    # row 0 of column 0 is gathered three times -> gradient 3, not 1
    assert x.grad.data[0, 0] == 3.0


def test_matmul_backward_reduces_interior_broadcast_dims():
    # MatMul.backward only summed *extra leading* dims, so a size-1 interior
    # batch dim broadcast against a real one raised a shape mismatch.
    a = Tensor(np.random.default_rng(0).standard_normal((1, 3, 4))
               .astype(np.float32), requires_grad=True)
    b = Tensor(np.random.default_rng(1).standard_normal((5, 4, 2))
               .astype(np.float32), requires_grad=True)
    out = F.matmul(a, b)
    assert out.shape == (5, 3, 2)
    grad = np.ones_like(out.data)
    out.backward(grad)
    assert a.grad.shape == a.shape
    assert b.grad.shape == b.shape
    expected_a = (grad @ np.swapaxes(b.data, -1, -2)).sum(axis=0,
                                                          keepdims=True)
    np.testing.assert_allclose(a.grad.data, expected_a, rtol=1e-5)


def test_nll_loss_backward_keeps_grad_dtype():
    # NLLLoss.backward hard-coded float32, silently downcasting fp64
    # gradients during numerical checking.
    logp = Tensor(np.log(np.full((2, 3), 1 / 3, dtype=np.float64)),
                  dtype=np.float64, requires_grad=True)
    loss = F.nll_loss(logp, np.array([0, 2]))
    loss.backward()
    assert logp.grad.data.dtype == np.float64
