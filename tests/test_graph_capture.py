"""Differential replay suite: captured-and-replayed epochs must be
byte-identical to dispatched epochs.

The headline guarantee of :mod:`repro.gpu.graph_capture` is that replaying a
validated epoch plan is *indistinguishable* from dispatching the epoch — on
the kernel/transfer event stream, the final device clocks, the complete
``DeviceStats``, the kernel-timeline trace (memory counter samples included),
and the full memory report.  Every test here compares a steady-dispatch run
against a capture-replay run of the same workload and asserts equality, not
closeness.
"""

import dataclasses

import pytest

from repro.core import executor, registry
from repro.core.characterize import measure_memory
from repro.gpu import SimulatedGPU, analysis_cache
from repro.gpu.graph_capture import (
    CaptureReplayController,
    replay_epoch,
    validate_events,
)
from repro.profiling.trace import trace_workload
from repro.tensor import manual_seed
from repro.testing.golden import StreamRecorder
from repro.testing.launch_sequences import make_launch, make_transfer
from repro.train.trainer import Trainer

KEYS = list(registry.WORKLOAD_KEYS)

# everything replay recomputes rather than records
EXACT_FIELDS = ("stream_digest", "launch_count", "transfer_count",
                "clock_s", "host_clock_s", "device_stats", "losses")


@pytest.fixture(scope="module")
def steady_baselines():
    """Dispatch-side fingerprints for the whole registry, per cache setting.

    ``analysis_hits``/``analysis_misses`` depend on whether the launch
    analysis cache is enabled, so the baseline is taken once for each
    setting and every capture run is compared against the matching one.
    """
    return {
        enabled: executor.capture_suite(mode="steady",
                                        analysis_cache_enabled=enabled,
                                        jobs=1, cache=False)
        for enabled in (True, False)
    }


class TestDifferentialReplay:
    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("cache_enabled", [True, False])
    def test_replay_matches_dispatch(self, steady_baselines, jobs,
                                     cache_enabled):
        replayed = executor.capture_suite(mode="capture",
                                          analysis_cache_enabled=cache_enabled,
                                          jobs=jobs, cache=False)
        assert sorted(replayed) == sorted(KEYS)
        for key in KEYS:
            steady, capture = steady_baselines[cache_enabled], replayed[key]
            for field in EXACT_FIELDS:
                assert steady[key][field] == capture[field], (key, field)
            # the run really replayed: warmup + capture + validate + 2 replays
            ctrl = capture["controller"]
            assert ctrl["state"] == "replay", (key, ctrl)
            assert ctrl["fallback_reason"] is None
            assert ctrl["replayed_epochs"] == 2
            assert ctrl["plan_kernels"] > 0
            assert steady[key]["controller"]["state"] == "steady"
            assert steady[key]["controller"]["replayed_epochs"] == 0

    @pytest.mark.parametrize("key", KEYS)
    def test_trace_differential(self, key):
        # memory=True also exercises the replayed pool events and the
        # per-alloc/free memory counter samples on the trace timeline
        analysis_cache.clear()
        dispatched = trace_workload(key, epochs=5, memory=True, mode="steady")
        analysis_cache.clear()
        replayed = trace_workload(key, epochs=5, memory=True, mode="capture")
        assert len(dispatched) == len(replayed)
        assert dispatched.digest() == replayed.digest()

    @pytest.mark.parametrize("key", KEYS)
    def test_memory_report_differential(self, key):
        analysis_cache.clear()
        dispatched = measure_memory(key, epochs=5, mode="steady")
        analysis_cache.clear()
        replayed = measure_memory(key, epochs=5, mode="capture")
        assert dispatched == replayed


def _controller_run(key, replay, epochs=5, corrupt=False):
    """Drive a controller epoch-by-epoch under a stream recorder."""
    analysis_cache.clear()
    spec = registry.get(key)
    manual_seed(0)
    device = SimulatedGPU()
    workload = spec.build(device=device, scale="test")
    device.reset()
    recorder = StreamRecorder().attach(device)
    controller = CaptureReplayController(workload, device, seed=0,
                                         replay=replay)
    for _ in range(epochs):
        if corrupt and controller.state == "validate":
            events, metrics = controller._captured
            controller._captured = (events[:-1], metrics)
        controller.step()
    recorder.detach()
    return {
        "digest": recorder.digest(),
        "clock_s": device.clock_s,
        "host_clock_s": device.host_clock_s,
        "stats": dataclasses.asdict(device.stats),
    }, controller


class TestFallback:
    def test_corrupted_capture_falls_back_identically(self):
        # A validation mismatch must (a) be detected, (b) permanently fall
        # back to dispatch, and (c) leave the run byte-identical to a pure
        # steady-dispatch run — fallback is invisible except in telemetry.
        key = KEYS[0]
        steady, steady_ctrl = _controller_run(key, replay=False)
        broken, broken_ctrl = _controller_run(key, replay=True, corrupt=True)
        assert steady_ctrl.state == "steady"
        assert broken_ctrl.state == "fallback"
        assert "event count" in broken_ctrl.fallback_reason \
            or "diverged" in broken_ctrl.fallback_reason
        assert broken_ctrl.replayed_epochs == 0
        assert broken_ctrl.plan is None
        assert broken == steady

    def test_describe_reports_fallback(self):
        _, ctrl = _controller_run(KEYS[0], replay=True, corrupt=True)
        info = ctrl.describe()
        assert info["state"] == "fallback"
        assert info["fallback_reason"]
        assert "plan_kernels" not in info


class TestValidateEvents:
    def test_identical_streams_pass(self):
        events = [make_launch("add"), make_transfer(), make_launch("mul")]
        assert validate_events(events, list(events)) is None

    def test_length_mismatch(self):
        events = [make_launch("add"), make_transfer()]
        assert validate_events(events, events[:-1]) is not None

    def test_tag_mismatch(self):
        assert validate_events([make_launch("add")],
                               [make_transfer()]) is not None

    def test_descriptor_field_divergence(self):
        assert validate_events(
            [make_launch("add", fp32_flops=1024.0)],
            [make_launch("add", fp32_flops=2048.0)]) is not None
        assert validate_events([make_launch("add")],
                               [make_launch("mul")]) is not None
        assert validate_events(
            [make_launch("add", phase="forward")],
            [make_launch("add", phase="backward")]) is not None

    def test_transfer_field_divergence(self):
        assert validate_events([make_transfer(nbytes=4096)],
                               [make_transfer(nbytes=8192)]) is not None
        assert validate_events([make_transfer(direction="h2d")],
                               [make_transfer(direction="d2h")]) is not None


class TestReplayUnit:
    def _plan(self, key=None):
        key = key or KEYS[0]
        analysis_cache.clear()
        manual_seed(0)
        device = SimulatedGPU()
        workload = registry.get(key).build(device=device, scale="test")
        device.reset()
        trainer = Trainer(workload=workload, device=device,
                          capture_replay=True)
        trainer.run(epochs=4, seed=0)
        ctrl = trainer._controller
        assert ctrl.state == "replay"
        return ctrl.plan, device, ctrl

    def test_replay_metrics_are_fresh_copies(self):
        plan, device, _ = self._plan()
        first = replay_epoch(plan, device)
        first["loss"] = -1.0
        second = replay_epoch(plan, device)
        assert second == plan.metrics
        assert second["loss"] != -1.0

    def test_replay_advances_launch_counter_and_clocks(self):
        plan, device, _ = self._plan()
        counter = device._launch_counter
        clock = device.clock_s
        replay_epoch(plan, device)
        assert device._launch_counter == counter + plan.kernel_count
        assert device.clock_s > clock

    def test_plan_totals_match_descriptor_sums(self):
        plan, _, _ = self._plan()
        totals = plan.totals()
        assert totals["fp32_flops"] == sum(
            e[1].descriptor.fp32_flops for e in plan.events if e[0] == "K")
        assert plan.kernel_count == sum(
            1 for e in plan.events if e[0] == "K")
        assert plan.transfer_count == sum(
            1 for e in plan.events if e[0] == "T")

    def test_trainer_controller_persists_across_runs(self):
        # benchmark protocol: warmup run(1) then timed run(3) reuse one
        # controller, so the timed run starts from the captured plan
        analysis_cache.clear()
        manual_seed(0)
        device = SimulatedGPU()
        workload = registry.get(KEYS[0]).build(device=device, scale="test")
        device.reset()
        trainer = Trainer(workload=workload, device=device,
                          capture_replay=True)
        trainer.run(epochs=1, seed=0)
        first = trainer._controller
        assert first is not None
        trainer.run(epochs=3, seed=0)
        assert trainer._controller is first
        assert first.state == "replay"
        assert first.replayed_epochs >= 1
