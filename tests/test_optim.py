"""Optimizers: convergence and kernel emission."""

import numpy as np
import pytest

from repro.gpu import SimulatedGPU
from repro.tensor import Tensor, functional as F, nn
from repro.tensor.optim import SGD, Adam, Optimizer


def _quadratic_steps(optimizer_cls, steps=60, **kw):
    """Minimize ||w - target||^2; returns final distance."""
    target = np.array([1.0, -2.0, 3.0], dtype=np.float32)
    w = nn.Parameter(np.zeros(3, dtype=np.float32))
    opt = optimizer_cls([w], **kw)
    for _ in range(steps):
        opt.zero_grad()
        loss = F.mse_loss(w, target)
        loss.backward()
        opt.step()
    return float(np.abs(w.data - target).max())


class TestConvergence:
    def test_sgd_converges(self):
        assert _quadratic_steps(SGD, lr=0.5, steps=100) < 0.05

    def test_sgd_momentum_converges(self):
        assert _quadratic_steps(SGD, lr=0.3, momentum=0.9, steps=100) < 0.1

    def test_adam_converges(self):
        assert _quadratic_steps(Adam, lr=0.2, steps=200) < 0.05

    def test_weight_decay_shrinks_solution(self):
        no_decay = _train_weight(weight_decay=0.0)
        decay = _train_weight(weight_decay=0.5)
        assert abs(decay) < abs(no_decay)


def _train_weight(weight_decay):
    w = nn.Parameter(np.array([5.0], dtype=np.float32))
    opt = SGD([w], lr=0.1, weight_decay=weight_decay)
    target = np.array([4.0], dtype=np.float32)
    for _ in range(100):
        opt.zero_grad()
        F.mse_loss(w, target).backward()
        opt.step()
    return float(w.data[0])


class TestKernelEmission:
    def test_adam_is_unfused_seven_kernels_per_param(self):
        """PyTorch 1.5 (the paper's version) had no fused Adam."""
        gpu = SimulatedGPU()
        names = []
        gpu.add_launch_listener(lambda l: names.append(l.name))
        layer = nn.Linear(4, 4).to(gpu)
        opt = Adam(layer.parameters())
        out = layer(Tensor(np.ones((2, 4), dtype=np.float32), device=gpu,
                           _skip_copy=True))
        out.sum().backward()
        names.clear()
        opt.step()
        adam_kernels = [n for n in names if n.startswith("adam_")]
        assert len(adam_kernels) == 7 * 2  # 7 kernels x (weight, bias)

    def test_optimizer_kernels_tagged_optimizer_phase(self):
        gpu = SimulatedGPU()
        phases = []
        gpu.add_launch_listener(lambda l: phases.append(l.descriptor.phase))
        layer = nn.Linear(2, 2).to(gpu)
        opt = SGD(layer.parameters(), lr=0.1)
        layer(Tensor(np.ones((1, 2), dtype=np.float32), device=gpu,
                     _skip_copy=True)).sum().backward()
        phases.clear()
        opt.step()
        assert phases and all(p == "optimizer" for p in phases)

    def test_zero_grad_emits_fill_kernels(self):
        gpu = SimulatedGPU()
        names = []
        gpu.add_launch_listener(lambda l: names.append(l.name))
        layer = nn.Linear(2, 2).to(gpu)
        opt = SGD(layer.parameters(), lr=0.1)
        layer(Tensor(np.ones((1, 2), dtype=np.float32), device=gpu,
                     _skip_copy=True)).sum().backward()
        names.clear()
        opt.zero_grad()
        assert names.count("zero_fill") == 2

    def test_gradient_bytes(self):
        layer = nn.Linear(10, 10)
        opt = Adam(layer.parameters())
        assert opt.gradient_bytes() == (100 + 10) * 4

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            Optimizer([])

    def test_step_skips_gradless_params(self):
        w = nn.Parameter(np.ones(2, dtype=np.float32))
        opt = Adam([w])
        opt.step()  # no grad: no update, no error
        np.testing.assert_allclose(w.data, 1.0)
