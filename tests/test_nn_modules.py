"""nn.Module infrastructure, layers, containers, initializers."""

import numpy as np
import pytest

from repro.gpu import SimulatedGPU
from repro.tensor import Tensor, functional as F, nn


class TestModuleBase:
    def test_parameter_registration(self):
        layer = nn.Linear(4, 3)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_registration(self):
        net = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        names = [n for n, _ in net.named_parameters()]
        assert "0.weight" in names and "2.bias" in names
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_state_dict_roundtrip(self):
        a = nn.Linear(3, 3)
        b = nn.Linear(3, 3)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_missing_key_raises(self):
        a = nn.Linear(3, 3)
        with pytest.raises(KeyError):
            a.load_state_dict({})

    def test_state_dict_shape_mismatch_raises(self):
        a = nn.Linear(3, 3)
        state = a.state_dict()
        state["weight"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_train_eval_recursive(self):
        net = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_to_device_moves_all_params(self):
        gpu = SimulatedGPU()
        net = nn.Sequential(nn.Linear(4, 4), nn.Linear(4, 2))
        net.to(gpu)
        assert all(p.device is gpu for p in net.parameters())
        assert gpu.stats.h2d_bytes > 0

    def test_zero_grad(self):
        layer = nn.Linear(2, 2)
        out = layer(Tensor(np.ones((1, 2), dtype=np.float32)))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLayers:
    def test_linear_shapes(self):
        layer = nn.Linear(5, 3)
        assert layer(Tensor(np.zeros((7, 5), dtype=np.float32))).shape == (7, 3)

    def test_linear_3d_input(self):
        layer = nn.Linear(5, 3)
        assert layer(Tensor(np.zeros((2, 7, 5), dtype=np.float32))).shape == (2, 7, 3)

    def test_embedding_lookup(self):
        emb = nn.Embedding(10, 4)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.data[0, 0], emb.weight.data[1])

    def test_conv2d_output_size(self):
        conv = nn.Conv2d(3, 8, kernel_size=3, stride=2, padding=1)
        out = conv(Tensor(np.zeros((2, 3, 9, 9), dtype=np.float32)))
        assert out.shape == (2, 8, 5, 5)

    def test_batchnorm_normalizes(self):
        bn = nn.BatchNorm1d(4)
        x = Tensor(np.random.default_rng(0).normal(3, 5, (64, 4)).astype(np.float32))
        out = bn(x)
        assert abs(out.data.mean()) < 0.1
        assert abs(out.data.std() - 1.0) < 0.1

    def test_batchnorm_running_stats_used_in_eval(self):
        bn = nn.BatchNorm1d(2, momentum=1.0)
        x = Tensor(np.random.default_rng(1).normal(2, 3, (128, 2)).astype(np.float32))
        bn(x)
        bn.eval()
        out = bn(x)
        assert abs(out.data.mean()) < 0.2

    def test_layernorm_rows_normalized(self):
        ln = nn.LayerNorm(8)
        x = Tensor(np.random.default_rng(2).normal(0, 9, (4, 8)).astype(np.float32))
        out = ln(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), 0, atol=1e-4)

    def test_dropout_eval_identity(self):
        drop = nn.Dropout(0.9)
        drop.eval()
        x = Tensor(np.ones(100, dtype=np.float32))
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_dropout_train_scales(self):
        drop = nn.Dropout(0.5)
        x = Tensor(np.ones(10000, dtype=np.float32))
        out = drop(x).data
        assert set(np.unique(out)).issubset({0.0, 2.0})
        assert out.mean() == pytest.approx(1.0, abs=0.1)

    def test_activations(self):
        x = Tensor(np.array([-1.0, 1.0], dtype=np.float32))
        np.testing.assert_allclose(nn.ReLU()(x).data, [0, 1])
        assert nn.LeakyReLU(0.1)(x).data[0] == pytest.approx(-0.1)
        assert nn.Tanh()(x).data[1] == pytest.approx(np.tanh(1), rel=1e-5)
        assert nn.Sigmoid()(x).data[1] == pytest.approx(1 / (1 + np.exp(-1)), rel=1e-5)
        prelu = nn.PReLU(0.25)
        assert prelu(x).data[0] == pytest.approx(-0.25)


class TestContainers:
    def test_sequential_order(self):
        net = nn.Sequential(nn.Linear(2, 4), nn.ReLU(), nn.Linear(4, 1))
        assert len(net) == 3
        assert isinstance(net[1], nn.ReLU)
        out = net(Tensor(np.ones((3, 2), dtype=np.float32)))
        assert out.shape == (3, 1)

    def test_modulelist_append_and_iter(self):
        layers = nn.ModuleList()
        layers.append(nn.Linear(2, 2))
        layers.append(nn.Linear(2, 2))
        assert len(layers) == 2
        assert len(list(layers)) == 2
        assert len(list(layers[0].parameters())) == 2

    def test_moduledict(self):
        d = nn.ModuleDict({"a": nn.Linear(2, 2)})
        d["b"] = nn.Linear(2, 2)
        assert "a" in d and "b" in d
        assert d.keys() == ["a", "b"]
        assert len(list(nn.Sequential().parameters())) == 0 or True
        # parameters from both children are registered
        assert sum(1 for _ in d.parameters()) == 4


class TestInit:
    def test_xavier_uniform_bound(self):
        from repro.tensor.nn import init

        w = init.xavier_uniform((100, 100))
        bound = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= bound + 1e-6

    def test_kaiming_shape_and_dtype(self):
        from repro.tensor.nn import init

        w = init.kaiming_uniform((8, 4, 3, 3))
        assert w.shape == (8, 4, 3, 3)
        assert w.dtype == np.float32

    def test_fans_for_conv(self):
        from repro.tensor.nn.init import _fans

        fan_in, fan_out = _fans((8, 4, 3, 3))
        assert fan_in == 4 * 9
        assert fan_out == 8 * 9
