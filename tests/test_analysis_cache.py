"""The launch-analysis cache must be invisible in everything but wall-clock.

Three layers of evidence:

* property tests — randomized descriptors analyzed through the cache return
  records *exactly* equal (dataclass equality over every float) to the cold
  pipeline's;
* memo plumbing — fingerprints, the ``irregular_row_access`` expansion memo,
  the segment-sum plan memo and the per-device launch-site memo all hit when
  they should, evict with their owning arrays, and stand down entirely under
  ``REPRO_ANALYSIS_CACHE=0`` semantics;
* end-to-end — every registry workload's one-epoch kernel-stream fingerprint
  (ordered stream digest included) is byte-identical with the cache on and
  off.
"""

from __future__ import annotations

import gc

from dataclasses import replace

import numpy as np
import pytest

from repro.core.registry import WORKLOAD_KEYS
from repro.gpu import SimulatedGPU, analysis_cache
from repro.gpu.analysis_cache import AnalysisCache, compute, signature
from repro.gpu.config import DEFAULT_SIMULATION
from repro.gpu.kernel import AccessPattern, KernelDescriptor, OpClass
from repro.tensor import manual_seed
from repro.tensor.ops import base as ops_base
from repro.tensor.ops import scattergather as sg
from repro.testing import fingerprint_workload


def _random_descriptor(rng: np.random.Generator) -> KernelDescriptor:
    kind = rng.integers(0, 3)
    if kind == 0:
        access = AccessPattern.coalesced(int(rng.choice([4, 8])))
    elif kind == 1:
        access = AccessPattern.strided(int(rng.choice([8, 32, 128])))
    else:
        idx = rng.integers(0, 5000, size=int(rng.integers(1, 9000)))
        access = AccessPattern.irregular(idx)
    op_class = rng.choice(list(OpClass))
    return KernelDescriptor(
        name=f"k{rng.integers(1e6)}",
        op_class=op_class,
        threads=int(rng.integers(1, 1 << 20)),
        fp32_flops=float(rng.integers(0, 1 << 30)),
        int32_iops=float(rng.integers(0, 1 << 30)),
        ldst_instrs=float(rng.integers(0, 1 << 24)),
        control_instrs=float(rng.integers(0, 1 << 20)),
        bytes_read=float(rng.integers(1, 1 << 28)),
        bytes_written=float(rng.integers(1, 1 << 28)),
        reuse_factor=float(rng.uniform(1.0, 8.0)),
        block_size=int(rng.choice([128, 256, 512])),
        phase=str(rng.choice(["forward", "backward", "optimizer"])),
        compute_scale=float(rng.uniform(1.0, 4.0)),
    )


class TestCachedEqualsCold:
    def test_randomized_descriptors(self):
        rng = np.random.default_rng(7)
        sim = DEFAULT_SIMULATION
        cache = AnalysisCache()
        with analysis_cache.override(True):
            for _ in range(200):
                desc = _random_descriptor(rng)
                cold = compute(desc, sim)
                first, hit1 = cache.analyze(desc, sim)
                again, hit2 = cache.analyze(desc, sim)
                assert not hit1 and hit2
                # exact dataclass equality: every float of every metric
                assert first == cold
                assert again is first

    def test_name_and_phase_do_not_split_records(self):
        sim = DEFAULT_SIMULATION
        cache = AnalysisCache()
        a = KernelDescriptor(name="fwd", op_class=OpClass.GATHER, threads=4096,
                             bytes_read=1e5, bytes_written=1e5, phase="forward")
        b = KernelDescriptor(name="bwd", op_class=OpClass.GATHER, threads=4096,
                             bytes_read=1e5, bytes_written=1e5, phase="backward")
        assert signature(a, sim) == signature(b, sim)
        rec_a, hit_a = cache.analyze(a, sim)
        rec_b, hit_b = cache.analyze(b, sim)
        assert not hit_a and hit_b and rec_b is rec_a


class TestFingerprints:
    def test_regular_patterns_are_closed_form(self):
        assert AccessPattern.coalesced(4).fingerprint() == ("C", 4)
        assert AccessPattern.strided(64, 4).fingerprint() == ("S", 64, 4)

    def test_equal_content_equal_fingerprint(self):
        idx = np.arange(10_000) % 97
        a = AccessPattern.irregular(idx.copy())
        b = AccessPattern.irregular(idx.copy())
        assert a.fingerprint() == b.fingerprint()

    def test_different_content_different_fingerprint(self):
        a = AccessPattern.irregular(np.arange(8192))
        b = AccessPattern.irregular(np.arange(8192)[::-1].copy())
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_is_cached_per_pattern(self):
        pat = AccessPattern.irregular(np.arange(8192))
        assert pat.fingerprint() is pat.fingerprint()


class TestRowAccessMemo:
    def test_hit_requires_cache_enabled(self):
        idx = np.arange(4096, dtype=np.int64)
        with analysis_cache.override(True):
            analysis_cache.clear()
            a = ops_base.irregular_row_access(idx, 16)
            b = ops_base.irregular_row_access(idx, 16)
            assert b is a
            c = ops_base.irregular_row_access(idx, 32)
            assert c is not a
        with analysis_cache.override(False):
            d = ops_base.irregular_row_access(idx, 16)
            e = ops_base.irregular_row_access(idx, 16)
            assert d is not e

    def test_eviction_when_index_array_dies(self):
        with analysis_cache.override(True):
            analysis_cache.clear()
            idx = np.arange(2048, dtype=np.int64)
            ops_base.irregular_row_access(idx, 8)
            assert len(ops_base._ROW_ACCESS_CACHE) == 1
            del idx
            gc.collect()
            assert len(ops_base._ROW_ACCESS_CACHE) == 0

    def test_clear_flushes_memo(self):
        with analysis_cache.override(True):
            analysis_cache.clear()
            idx = np.arange(1024, dtype=np.int64)
            ops_base.irregular_row_access(idx, 8)
            assert len(ops_base._ROW_ACCESS_CACHE) == 1
            analysis_cache.clear()
            assert len(ops_base._ROW_ACCESS_CACHE) == 0


class TestSegmentSumPlans:
    def test_values_identical_enabled_and_disabled(self):
        rng = np.random.default_rng(3)
        for cols in (1, 8, 64):  # narrow (bincount) and wide (CSR) branches
            src = rng.standard_normal((500, cols)).astype(np.float32)
            idx = rng.integers(0, 40, size=500).astype(np.int64)
            with analysis_cache.override(True):
                analysis_cache.clear()
                warm1 = sg.segment_sum_data(src, idx, 40)
                warm2 = sg.segment_sum_data(src, idx, 40)  # plan-cache hit
            with analysis_cache.override(False):
                cold = sg.segment_sum_data(src, idx, 40)
            assert np.array_equal(warm1, cold)
            assert np.array_equal(warm2, cold)

    def test_plan_memo_and_eviction(self):
        with analysis_cache.override(True):
            analysis_cache.clear()
            idx = np.arange(256, dtype=np.int64) % 16
            src = np.ones((256, 64), dtype=np.float32)
            sg.segment_sum_data(src, idx, 16)
            assert len(sg._SEGSUM_PLANS) == 1
            del idx
            gc.collect()
            assert len(sg._SEGSUM_PLANS) == 0

    def test_disabled_caches_nothing(self):
        with analysis_cache.override(False):
            analysis_cache.clear()
            idx = np.arange(128, dtype=np.int64) % 4
            sg.segment_sum_data(np.ones((128, 64), np.float32), idx, 4)
            assert len(sg._SEGSUM_PLANS) == 0


class TestDeviceCounters:
    def _run(self, enabled: bool):
        with analysis_cache.override(enabled):
            analysis_cache.clear()
            device = SimulatedGPU()
            for _ in range(3):
                ops_base.launch_elementwise(device, "ew_test", 1 << 16, 2)
                ops_base.launch_reduction(device, "red_test", 1 << 16, 1)
            # copy before the override exits: leaving the block may flip the
            # effective setting, which zeroes the live hit/miss counters
            return replace(device.stats)

    def test_hits_and_misses_partition_launches(self):
        stats = self._run(enabled=True)
        assert stats.analysis_hits + stats.analysis_misses == stats.kernel_count
        assert stats.analysis_hits > 0  # repeats replay from the site memo

    def test_disabled_counts_every_launch_as_miss(self):
        stats = self._run(enabled=False)
        assert stats.analysis_hits == 0
        assert stats.analysis_misses == stats.kernel_count

    def test_replay_matches_cold_clock(self):
        # identical launch sequences must produce identical simulated clocks
        clocks = {}
        for enabled in (True, False):
            with analysis_cache.override(enabled):
                analysis_cache.clear()
                device = SimulatedGPU()
                for _ in range(5):
                    ops_base.launch_elementwise(device, "ew_clock", 1 << 14, 2)
                clocks[enabled] = (device.clock_s, device.stats.kernel_time_s,
                                  device.stats.launch_overhead_s)
        assert clocks[True] == clocks[False]


@pytest.mark.parametrize("key", WORKLOAD_KEYS)
def test_stream_fingerprint_identical_cache_on_and_off(key):
    """The tentpole guarantee: memoization changes wall-clock, nothing else.

    Full one-epoch fingerprints — ordered stream digest, per-op-class launch
    histograms, instruction/byte totals, transfer totals and training losses
    — must match exactly between the cached and cold pipelines.
    """
    manual_seed(0)
    with analysis_cache.override(True):
        analysis_cache.clear()
        warm = fingerprint_workload(key)
    with analysis_cache.override(False):
        cold = fingerprint_workload(key)
    analysis_cache.clear()
    assert warm == cold
