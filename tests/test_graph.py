"""Graph library: structure invariants and adjacency normalizations."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, generators


def _random_graph(seed=0, n=20, e=50):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, e)
    dst = rng.integers(0, n, e)
    return Graph(src, dst, num_nodes=n)


class TestGraphBasics:
    def test_counts(self):
        g = Graph([0, 1], [1, 2])
        assert g.num_nodes == 3 and g.num_edges == 2

    def test_explicit_num_nodes(self):
        g = Graph([0], [1], num_nodes=10)
        assert g.num_nodes == 10

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Graph([0, 5], [1, 1], num_nodes=3)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            Graph([0, 1], [1])

    def test_degrees(self):
        g = Graph([0, 0, 1], [1, 2, 2])
        np.testing.assert_array_equal(g.out_degrees(), [2, 1, 0])
        np.testing.assert_array_equal(g.in_degrees(), [0, 1, 2])

    def test_neighbors_are_in_edge_sources(self):
        g = Graph([0, 1, 2], [2, 2, 0])
        assert set(g.neighbors(2)) == {0, 1}

    def test_csr_orientation(self):
        """Row = destination: A @ x aggregates in-neighbors."""
        g = Graph([0, 1], [2, 2])
        x = np.array([1.0, 2.0, 4.0])
        out = g.csr() @ x
        assert out[2] == pytest.approx(3.0)

    def test_from_scipy_roundtrip(self):
        mat = sp.random(8, 8, 0.3, random_state=0, format="csr")
        g = Graph.from_scipy(mat)
        np.testing.assert_allclose(g.csr().toarray(), mat.T.toarray())


class TestTransforms:
    def test_to_undirected_symmetric(self):
        g = _random_graph().to_undirected()
        a = g.csr().toarray() > 0
        np.testing.assert_array_equal(a, a.T)

    def test_add_self_loops_idempotent_diagonal(self):
        g = _random_graph().add_self_loops()
        diag = g.csr().toarray().diagonal()
        assert np.all(diag > 0)
        # applying again must not duplicate loops
        again = g.add_self_loops()
        assert again.num_edges == g.num_edges

    def test_subgraph_relabels(self):
        g = Graph([0, 1, 2, 3], [1, 2, 3, 0], num_nodes=4)
        sub, kept = g.subgraph(np.array([1, 2]))
        assert sub.num_nodes == 2
        np.testing.assert_array_equal(kept, [1, 2])
        # the only induced edge is 1 -> 2 (relabelled 0 -> 1)
        assert sub.num_edges == 1
        assert sub.src[0] == 0 and sub.dst[0] == 1

    @given(st.integers(5, 40), st.integers(0, 100), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_subgraph_never_exceeds_parent(self, n, e, seed):
        rng = np.random.default_rng(seed)
        g = Graph(rng.integers(0, n, e), rng.integers(0, n, e), num_nodes=n)
        pick = rng.choice(n, size=rng.integers(1, n + 1), replace=False)
        sub, kept = g.subgraph(pick)
        assert sub.num_nodes == np.unique(pick).size
        assert sub.num_edges <= g.num_edges


class TestNormalization:
    def test_rw_rows_sum_to_one(self):
        adj = _random_graph(n=15, e=60).adjacency("rw").scipy()
        sums = np.asarray(adj.sum(axis=1)).reshape(-1)
        nonzero = sums[sums > 0]
        np.testing.assert_allclose(nonzero, 1.0, rtol=1e-5)

    def test_sym_is_symmetric_for_undirected(self):
        g = _random_graph(n=12, e=40).to_undirected()
        adj = g.adjacency("sym").scipy().toarray()
        np.testing.assert_allclose(adj, adj.T, atol=1e-6)

    def test_sym_spectrum_bounded(self):
        g = _random_graph(n=20, e=80).to_undirected()
        adj = g.adjacency("sym", add_self_loops=True).scipy().toarray()
        eigs = np.linalg.eigvalsh(adj)
        assert eigs.max() <= 1.0 + 1e-5

    def test_unknown_norm_raises(self):
        with pytest.raises(ValueError):
            _random_graph().adjacency("bogus")

    def test_adjacency_cached(self):
        g = _random_graph()
        assert g.adjacency("sym") is g.adjacency("sym")


class TestGenerators:
    def test_sbm_blocks_and_determinism(self):
        g1, l1 = generators.stochastic_block_model([20, 20], 0.3, 0.02,
                                                   np.random.default_rng(0))
        g2, _ = generators.stochastic_block_model([20, 20], 0.3, 0.02,
                                                  np.random.default_rng(0))
        assert g1.num_edges == g2.num_edges
        assert np.bincount(l1).tolist() == [20, 20]

    def test_sbm_communities_denser_inside(self):
        g, labels = generators.stochastic_block_model(
            [40, 40], 0.3, 0.01, np.random.default_rng(1)
        )
        same = (labels[g.src] == labels[g.dst]).mean()
        assert same > 0.7

    def test_preferential_attachment_heavy_tail(self):
        g = generators.preferential_attachment(200, 2, np.random.default_rng(2))
        degrees = g.in_degrees()
        assert degrees.max() > 4 * max(1.0, np.median(degrees))

    def test_sensor_network_weights_in_unit_interval(self):
        g, points = generators.sensor_network(30, 4, np.random.default_rng(3))
        assert points.shape == (30, 2)
        assert np.all(g.edge_weight > 0) and np.all(g.edge_weight <= 1.0)
        assert g.num_edges == 30 * 4

    def test_random_molecule_connected(self):
        import networkx as nx

        g = generators.random_molecule(np.random.default_rng(4))
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.num_nodes))
        nxg.add_edges_from(zip(g.src.tolist(), g.dst.tolist()))
        assert nx.is_connected(nxg)

    @given(st.integers(2, 50))
    @settings(max_examples=25, deadline=None)
    def test_binary_tree_structure(self, leaves):
        parent, _, is_leaf = generators.random_binary_tree(
            leaves, np.random.default_rng(leaves)
        )
        total = 2 * leaves - 1
        assert parent.size == total
        assert int(is_leaf.sum()) == leaves
        assert int((parent == -1).sum()) == 1          # one root
        # every internal node has exactly two children
        counts = np.bincount(parent[parent >= 0], minlength=total)
        assert np.all(counts[~is_leaf] == 2)
        assert np.all(counts[is_leaf] == 0)
        # children always have smaller ids (enables one-pass propagation)
        child_ids = np.nonzero(parent >= 0)[0]
        assert np.all(parent[child_ids] > child_ids)

    def test_erdos_renyi_no_self_loops(self):
        g = generators.erdos_renyi(50, 3.0, np.random.default_rng(5))
        assert np.all(g.src != g.dst)
