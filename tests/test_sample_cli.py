"""CLI tests for ``python -m repro sample`` and ``golden --sample``.

Error paths (unknown/unsampleable workload, contradictory knobs) must exit
non-zero with a usable message; single-workload mode prints the loader
report and digest; suite mode writes ``BENCH_sample.json`` and gates
against a committed baseline; ``-o`` exports a Chrome trace whose
``loader`` stream survives the round-trip.
"""

import json

import pytest

from repro.profiling import metrics, trace
from tests.cli_helpers import run_cli


class TestSampleCommand:
    def test_happy_path_prints_report(self, capsys):
        res = run_cli(["sample", "arga", "--fanouts", "4,3",
                       "--batch-size", "32"], capsys)
        assert res.code == 0
        assert "ARGA" in res.out
        assert "loader stall" in res.out
        assert "queue" in res.out
        assert "sample digest" in res.out
        assert "epochs per" in res.out

    def test_trace_export_keeps_loader_stream(self, capsys, tmp_path):
        out_path = tmp_path / "sample.json"
        res = run_cli(["sample", "arga", "--fanouts", "4,3",
                       "--batch-size", "32", "-o", str(out_path)], capsys)
        assert res.code == 0
        data = json.loads(out_path.read_text())
        trace.validate_chrome(data)
        cats = {ev.get("cat") for ev in data["traceEvents"]}
        assert "loader" in cats
        # lossless round-trip: the loader spans come back on their stream
        timeline = trace.Timeline.from_chrome(data)
        spans = [s for s in timeline.spans if s.cat == trace.CAT_LOADER]
        assert spans and all(s.tid == "loader" for s in spans)
        trace.validate_chrome(timeline.to_chrome())
        assert str(out_path) in res.out

    def test_repeat_runs_print_same_digest(self, capsys):
        argv = ["sample", "psage-mvl", "--fanouts", "4,3",
                "--batch-size", "32"]
        first = run_cli(argv, capsys)
        second = run_cli(argv, capsys)
        digest = [ln for ln in first.out.splitlines() if "digest" in ln]
        assert digest and digest == \
            [ln for ln in second.out.splitlines() if "digest" in ln]

    def test_metrics_export_has_loader_gauges(self, capsys, tmp_path):
        out = tmp_path / "metrics.json"
        metrics.registry().clear()
        res = run_cli(["sample", "arga", "--fanouts", "4,3",
                       "--batch-size", "32",
                       "--metrics-output", str(out)], capsys)
        assert res.code == 0
        names = set(json.loads(out.read_text()))
        assert "repro_loader_batches_total" in names
        assert "repro_loader_stall_seconds" in names
        assert "repro_loader_queue_occupancy_mean" in names
        prom = out.with_suffix(".prom").read_text()
        assert "repro_loader_stall_fraction" in prom

    def test_unknown_workload_rejected(self, capsys):
        res = run_cli(["sample", "nope"], capsys)
        assert res.code != 0
        assert "unknown workload" in res.err

    def test_unsampleable_workload_rejected(self, capsys):
        res = run_cli(["sample", "tlstm"], capsys)
        assert res.code == 2
        assert "no mini-batch sampling engine" in res.out + res.err

    @pytest.mark.parametrize("argv,needle", [
        (["sample", "arga", "--fanouts", "0,5"], "fanouts"),
        (["sample", "arga", "--batch-size", "0"], "batch-size"),
        (["sample", "arga", "--prefetch-depth", "-1"], "prefetch-depth"),
        (["sample", "psage-mvl", "--nodes", "1000"], "--nodes"),
    ])
    def test_contradictory_flags_rejected(self, capsys, argv, needle):
        res = run_cli(argv, capsys)
        assert res.code == 2
        assert needle in res.out + res.err


class TestSampleSuiteMode:
    def test_writes_bench_and_passes_committed_baseline(self, capsys,
                                                        tmp_path):
        out = tmp_path / "BENCH_sample.json"
        res = run_cli(["sample", "-o", str(out),
                       "--baseline", "benchmarks/sample_baseline.json"],
                      capsys)
        assert res.code == 0
        assert "baseline check ok" in res.out
        report = json.loads(out.read_text())
        assert report["suite"] == ["ARGA", "PSAGE-MVL"]
        for row in report["workloads"].values():
            assert row["speedup"] > 1.0
            assert row["prefetch_stall_s"] < row["sync_stall_s"]

    def test_regression_exits_nonzero(self, capsys, tmp_path):
        # a baseline demanding more speedup than measured must fail the gate
        with open("benchmarks/sample_baseline.json") as fh:
            baseline = json.load(fh)
        baseline["speedup"] = baseline["speedup"] * 10
        fake = tmp_path / "impossible.json"
        fake.write_text(json.dumps(baseline))
        out = tmp_path / "BENCH_sample.json"
        res = run_cli(["sample", "-o", str(out), "--baseline", str(fake)],
                      capsys)
        assert res.code == 1
        assert "REGRESSION" in res.out


class TestGoldenSampleFlow:
    def test_verify_against_committed_snapshots(self, capsys):
        res = run_cli(["golden", "--sample"], capsys)
        assert res.code == 0
        assert "ARGA: ok" in res.out
        assert "PSAGE-MVL: ok" in res.out

    def test_single_key_verify(self, capsys):
        res = run_cli(["golden", "ARGA", "--sample"], capsys)
        assert res.code == 0
        assert "ARGA: ok" in res.out
        assert "PSAGE-MVL" not in res.out
