"""Hypothesis property suite for the neighbor loader.

Invariants the mini-batch pipeline rests on: every dst is a seed, per-seed
fanout bounds hold, blocks nest layer-to-layer, an epoch covers exactly a
permutation of the train ids, and everything replays byte-identically from
the ``[seed, epoch, batch_idx]`` spawn keys.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import generators, uniform_neighbor_block
from repro.train.loader import NeighborLoader


def _graph(seed):
    g, _ = generators.stochastic_block_model(
        [25, 25, 25], 0.15, 0.02, np.random.default_rng(seed))
    return g


graph_seeds = st.integers(0, 200)
fanout_lists = st.lists(st.integers(1, 8), min_size=1, max_size=3)


class TestBlockProperties:
    @given(graph_seeds, st.integers(1, 10), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_every_dst_is_a_seed(self, gseed, fanout, rseed):
        g = _graph(gseed)
        rng = np.random.default_rng(rseed)
        seeds = rng.choice(g.num_nodes, size=12, replace=False)
        block = uniform_neighbor_block(g, seeds, fanout, rng)
        np.testing.assert_array_equal(block.dst_nodes, seeds)
        np.testing.assert_array_equal(block.src_nodes[: seeds.size], seeds)
        # every edge destination indexes a seed slot
        assert np.all(block.edge_dst < seeds.size)

    @given(graph_seeds, st.integers(1, 10), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_fanout_bounds_respected(self, gseed, fanout, rseed):
        g = _graph(gseed)
        rng = np.random.default_rng(rseed)
        seeds = rng.choice(g.num_nodes, size=10, replace=False)
        block = uniform_neighbor_block(g, seeds, fanout, rng)
        counts = np.bincount(block.edge_dst, minlength=seeds.size)
        csr = g.csr()
        indptr = csr.indptr.astype(np.int64)
        deg = indptr[seeds + 1] - indptr[seeds]
        # exactly min(degree, fanout) neighbors drawn, without replacement
        np.testing.assert_array_equal(counts, np.minimum(deg, fanout))

    @given(graph_seeds, fanout_lists, st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_blocks_nest_layer_to_layer(self, gseed, fanouts, rseed):
        g = _graph(gseed)
        loader = NeighborLoader(g, np.arange(g.num_nodes), tuple(fanouts),
                                batch_size=8, seed=0)
        rng = np.random.default_rng(rseed)
        seeds = rng.choice(g.num_nodes, size=6, replace=False)
        blocks = loader.sample_blocks(seeds, rng)
        assert len(blocks) == len(fanouts)
        np.testing.assert_array_equal(blocks[-1].dst_nodes, seeds)
        for outer, inner in zip(blocks, blocks[1:]):
            np.testing.assert_array_equal(outer.dst_nodes, inner.src_nodes)
        for block in blocks:
            np.testing.assert_array_equal(
                block.src_nodes[: block.num_dst], block.dst_nodes)


class TestEpochProperties:
    @given(st.integers(10, 120), st.integers(1, 32), st.integers(0, 1000),
           st.integers(0, 5))
    @settings(max_examples=25, deadline=None)
    def test_epoch_coverage_is_permutation(self, n_ids, batch_size, seed,
                                           epoch):
        g = _graph(0)
        ids = np.sort(np.random.default_rng(seed).choice(
            g.num_nodes, size=min(n_ids, g.num_nodes), replace=False))
        loader = NeighborLoader(g, ids, (4,), batch_size, seed=seed)
        batches = loader.batches(epoch)
        assert len(batches) == loader.num_batches
        assert all(b.size <= batch_size for b in batches)
        np.testing.assert_array_equal(
            np.sort(np.concatenate(batches)), ids)

    @given(st.integers(0, 1000), st.integers(0, 3), st.integers(0, 5))
    @settings(max_examples=25, deadline=None)
    def test_batch_rng_replays_byte_identically(self, seed, epoch, batch):
        g = _graph(1)
        loader = NeighborLoader(g, np.arange(g.num_nodes), (5, 3), 16,
                                seed=seed)
        again = NeighborLoader(g, np.arange(g.num_nodes), (5, 3), 16,
                               seed=seed)
        seeds = loader.batches(epoch)[min(batch, loader.num_batches - 1)]
        a = loader.sample_blocks(seeds, loader.batch_rng(epoch, batch))
        b = again.sample_blocks(seeds, again.batch_rng(epoch, batch))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.src_nodes, y.src_nodes)
            np.testing.assert_array_equal(x.dst_nodes, y.dst_nodes)
            np.testing.assert_array_equal(x.edge_src, y.edge_src)
            np.testing.assert_array_equal(x.edge_dst, y.edge_dst)

    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_distinct_batch_indices_decorrelate(self, seed):
        g = _graph(2)
        loader = NeighborLoader(g, np.arange(g.num_nodes), (6,), 16,
                                seed=seed)
        seeds = loader.batches(0)[0]
        a = loader.sample_blocks(seeds, loader.batch_rng(0, 0))
        b = loader.sample_blocks(seeds, loader.batch_rng(0, 1))
        # same seeds, different spawn key: the draws should differ
        # (overwhelmingly; identical draws would signal a keying bug)
        assert (a[0].edge_src.size != b[0].edge_src.size
                or not np.array_equal(a[0].edge_src, b[0].edge_src))
