"""Every differentiable op and layer against fp64 central differences.

Inputs are tiny (tens of elements) and deliberately kept away from the
non-smooth points of each op — |x| bounded away from 0 for relu/abs, no
ties for max-style reductions, bases positive for fractional powers — so
the numerical derivative is well-defined everywhere we probe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.sampling import SampledBlock
from repro.models import layers
from repro.tensor import SparseTensor, Tensor, functional as F
from repro.tensor.ops.elementwise import FusedLSTMPointwise
from repro.testing import gradcheck, gradcheck_module


def t(shape, seed=0, scale=1.0, offset=0.0, kink=0.0):
    """A float32 tensor with |value - offset| kept >= kink."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(shape) * scale
    if kink:
        data = np.where(np.abs(data) < kink, np.sign(data) * kink + data, data)
    return Tensor((data + offset).astype(np.float32))


def _csr(rows=5, cols=4, seed=3, weighted=True):
    rng = np.random.default_rng(seed)
    r = rng.integers(0, rows, size=9)
    c = rng.integers(0, cols, size=9)
    v = rng.uniform(0.5, 1.5, size=9).astype(np.float32) if weighted else None
    return SparseTensor.from_edges(r, c, v, (rows, cols))


def _lstm_inputs():
    return [t((2, 12), seed=5, scale=0.8), t((2, 3), seed=6, scale=0.8)]


def _clamp_input():
    # keep every value > 0.08 away from the clamp bounds at +-0.6
    rng = np.random.default_rng(9)
    data = rng.uniform(-1.0, 1.0, size=(3, 4))
    data = np.where(np.abs(np.abs(data) - 0.6) < 0.08,
                    np.sign(data) * 0.3, data)
    return Tensor(data.astype(np.float32))


OP_CASES = [
    # -- elementwise binary -------------------------------------------------
    ("add", lambda: (F.add, [t((3, 4), 0), t((3, 4), 1)])),
    ("add_broadcast", lambda: (F.add, [t((3, 1, 4), 0), t((2, 4), 1)])),
    ("sub", lambda: (F.sub, [t((3, 4), 0), t((3, 4), 1)])),
    ("mul", lambda: (F.mul, [t((3, 4), 0), t((3, 4), 1)])),
    ("mul_broadcast", lambda: (F.mul, [t((2, 3, 4), 0), t((4,), 1)])),
    ("div", lambda: (F.div, [t((3, 4), 0), t((3, 4), 1, offset=2.0)])),
    ("maximum", lambda: (F.maximum, [t((3, 4), 0), t((3, 4), 1)])),
    # -- elementwise unary --------------------------------------------------
    ("neg", lambda: (F.neg, [t((3, 4), 0)])),
    ("exp", lambda: (F.exp, [t((3, 4), 0, scale=0.5)])),
    ("log", lambda: (F.log, [t((3, 4), 0, scale=0.3, offset=1.5)])),
    ("sqrt", lambda: (F.sqrt, [t((3, 4), 0, scale=0.3, offset=1.5)])),
    ("tanh", lambda: (F.tanh, [t((3, 4), 0)])),
    ("sigmoid", lambda: (F.sigmoid, [t((3, 4), 0)])),
    ("relu", lambda: (F.relu, [t((3, 4), 0, kink=0.1)])),
    ("leaky_relu", lambda: (lambda a: F.leaky_relu(a, 0.2),
                            [t((3, 4), 0, kink=0.1)])),
    ("prelu", lambda: (F.prelu, [t((3, 4), 0, kink=0.1),
                                 t((1,), 1, offset=0.25)])),
    ("abs", lambda: (F.abs, [t((3, 4), 0, kink=0.1)])),
    ("pow_cubed", lambda: (lambda a: F.pow(a, 3.0), [t((3, 4), 0)])),
    ("pow_frac", lambda: (lambda a: F.pow(a, 1.5),
                          [t((3, 4), 0, scale=0.3, offset=1.5)])),
    ("clamp", lambda: (lambda a: F.clamp(a, -0.6, 0.6), [_clamp_input()])),
    ("where", lambda: (lambda a, b: F.where(
        np.arange(12).reshape(3, 4) % 2 == 0, a, b),
        [t((3, 4), 0), t((3, 4), 1)])),
    ("fused_lstm", lambda: (FusedLSTMPointwise.apply, _lstm_inputs())),
    # -- dense math ---------------------------------------------------------
    ("matmul", lambda: (F.matmul, [t((3, 4), 0), t((4, 2), 1)])),
    ("matmul_batched", lambda: (F.matmul, [t((2, 3, 4), 0), t((2, 4, 2), 1)])),
    ("matmul_broadcast", lambda: (F.matmul,
                                  [t((1, 3, 4), 0), t((5, 4, 2), 1)])),
    ("linear", lambda: (F.linear, [t((3, 4), 0), t((5, 4), 1)])),
    ("linear_bias", lambda: (F.linear,
                             [t((3, 4), 0), t((5, 4), 1), t((5,), 2)])),
    ("conv2d", lambda: (F.conv2d, [t((1, 2, 5, 5), 0), t((3, 2, 3, 3), 1)])),
    ("conv2d_stride_pad_bias", lambda: (
        lambda x, w, b: F.conv2d(x, w, b, stride=2, padding=1),
        [t((2, 2, 5, 5), 0), t((3, 2, 3, 3), 1), t((3,), 2)])),
    ("spmm", lambda: (lambda x: F.spmm(_csr(), x), [t((4, 3), 0)])),
    # -- irregular data movement -------------------------------------------
    ("index_select_dup", lambda: (
        lambda x: F.index_select(x, np.array([0, 2, 2, 1, 0])),
        [t((4, 3), 0)])),
    ("gather_dup", lambda: (
        lambda x: F.gather(x, np.array([[0, 0, 1], [0, 2, 1]]), 0),
        [t((4, 3), 0)])),
    ("scatter_add", lambda: (
        lambda x: F.scatter_add(x, np.array([0, 2, 1, 2, 2]), 3),
        [t((5, 3), 0)])),
    ("segment_mean", lambda: (
        lambda x: F.segment_mean(x, np.array([0, 2, 1, 2, 2]), 4),
        [t((5, 3), 0)])),
    ("segment_max", lambda: (
        lambda x: F.segment_max(x, np.array([0, 2, 1, 2, 2]), 3),
        [t((5, 3), 0)])),
    ("embedding_dup", lambda: (
        lambda w: F.embedding(w, np.array([[0, 3, 3], [1, 0, 2]])),
        [t((5, 3), 0)])),
    # -- softmax / normalization -------------------------------------------
    ("softmax", lambda: (F.softmax, [t((3, 5), 0)])),
    ("softmax_axis0", lambda: (lambda a: F.softmax(a, axis=0),
                               [t((3, 5), 0)])),
    ("log_softmax", lambda: (F.log_softmax, [t((3, 5), 0)])),
    ("batch_norm", lambda: (F.batch_norm,
                            [t((4, 3, 2), 0), t((3,), 1, offset=1.0),
                             t((3,), 2)])),
    ("layer_norm", lambda: (F.layer_norm,
                            [t((4, 6), 0), t((6,), 1, offset=1.0),
                             t((6,), 2)])),
    # -- reductions ---------------------------------------------------------
    ("sum", lambda: (F.sum, [t((3, 4), 0)])),
    ("sum_axis_keepdims", lambda: (
        lambda a: F.sum(a, axis=1, keepdims=True), [t((3, 4), 0)])),
    ("mean_axis", lambda: (lambda a: F.mean(a, axis=0), [t((3, 4), 0)])),
    ("max_axis", lambda: (lambda a: F.max(a, axis=-1), [t((3, 4), 0)])),
    ("min", lambda: (F.min, [t((3, 4), 0)])),
    # -- shape --------------------------------------------------------------
    ("reshape", lambda: (lambda a: a.reshape(4, 3), [t((3, 4), 0)])),
    ("permute", lambda: (lambda a: a.permute(2, 0, 1), [t((2, 3, 4), 0)])),
    ("cat", lambda: (lambda a, b: F.cat([a, b], axis=1),
                     [t((3, 2), 0), t((3, 4), 1)])),
    ("stack", lambda: (lambda a, b: F.stack([a, b], axis=0),
                       [t((3, 4), 0), t((3, 4), 1)])),
    ("slice", lambda: (lambda a: a[0:2, 1:3], [t((3, 4), 0)])),
    ("pad2d", lambda: (lambda a: F.pad2d(a, (1, 2, 0, 1)),
                       [t((1, 2, 3, 3), 0)])),
    # -- losses -------------------------------------------------------------
    ("cross_entropy", lambda: (
        lambda x: F.cross_entropy(x, np.array([0, 2, 1])), [t((3, 4), 0)])),
    ("nll_loss", lambda: (
        lambda x: F.nll_loss(F.log_softmax(x), np.array([0, 2, 1])),
        [t((3, 4), 0)])),
    ("bce_with_logits", lambda: (
        lambda x: F.binary_cross_entropy_with_logits(
            x, (np.arange(12).reshape(3, 4) % 2).astype(np.float32)),
        [t((3, 4), 0)])),
    ("bce_pos_weight", lambda: (
        lambda x: F.binary_cross_entropy_with_logits(
            x, (np.arange(12).reshape(3, 4) % 2).astype(np.float32),
            pos_weight=3.0),
        [t((3, 4), 0)])),
    ("mse_loss", lambda: (
        lambda x: F.mse_loss(x, np.zeros((3, 4), dtype=np.float32)),
        [t((3, 4), 0)])),
    ("margin_ranking_loss", lambda: (
        lambda p, n: F.margin_ranking_loss(p, n, margin=0.5),
        [t((6,), 0, offset=1.0), t((6,), 1, offset=-1.0)])),
]


@pytest.mark.parametrize("name,case", OP_CASES, ids=[n for n, _ in OP_CASES])
def test_op_gradients(name, case):
    fn, inputs = case()
    result = gradcheck(fn, inputs)
    assert result.ok, result.report()


# -- layers -------------------------------------------------------------------
_EDGE_SRC = np.array([0, 1, 2, 3, 4, 0, 2])
_EDGE_DST = np.array([1, 0, 3, 2, 0, 4, 1])


def _block(weighted):
    weight = (np.linspace(0.5, 1.5, _EDGE_SRC.size).astype(np.float32)
              if weighted else None)
    return SampledBlock(
        src_nodes=np.arange(5),
        dst_nodes=np.arange(3),
        edge_src=_EDGE_SRC % 5,
        edge_dst=_EDGE_DST % 3,
        edge_weight=weight,
    )


LAYER_CASES = [
    ("gcn_conv", lambda: (layers.GCNConv(3, 4),
                          [_csr(5, 5, seed=7), t((5, 3), 0)])),
    ("gcn_conv_dynamic", lambda: (layers.GCNConv(3, 4, dynamic_norm=True),
                                  [_csr(5, 5, seed=7), t((5, 3), 0)])),
    ("cheb_graph_conv", lambda: (layers.ChebGraphConv(3, 4, k=3),
                                 [_csr(5, 5, seed=8), t((5, 3), 0)])),
    ("sage_conv", lambda: (layers.SAGEConv(3, 4),
                           [_block(weighted=False), t((5, 3), 0)])),
    ("sage_conv_weighted", lambda: (layers.SAGEConv(3, 4),
                                    [_block(weighted=True), t((5, 3), 0)])),
    ("gin_conv", lambda: (layers.GINConv(3, 4),
                          [t((5, 3), 0), _EDGE_SRC % 5, _EDGE_DST % 5])),
    # positive features keep GENConv's relu'd messages distinct, so its
    # internal segment_max sees no ties (where the subgradient is ambiguous)
    ("gen_conv", lambda: (layers.GENConv(3),
                          [t((5, 3), 0, scale=0.4, offset=2.0),
                           _EDGE_SRC % 5, _EDGE_DST % 5])),
    ("inner_product_decoder", lambda: (layers.InnerProductDecoder(dropout=0.0),
                                       [t((4, 3), 0)])),
    ("mlp_readout", lambda: (layers.MLPReadout(3, 2),
                             [t((5, 3), 0), np.array([0, 1, 1, 0, 2]), 3])),
]


@pytest.mark.parametrize("name,case", LAYER_CASES,
                         ids=[n for n, _ in LAYER_CASES])
def test_layer_gradients(name, case):
    module, args = case()
    result = gradcheck_module(module, args)
    assert result.ok, result.report()


@pytest.mark.parametrize("reduce", ["sum", "mean", "max"])
def test_gather_scatter_gradients(reduce):
    x = t((5, 3), 0)
    result = gradcheck(
        lambda v: layers.gather_scatter(v, _EDGE_SRC % 5, _EDGE_DST % 4, 4,
                                        reduce=reduce),
        [x],
    )
    assert result.ok, result.report()
