"""GPU-model invariant validators: positive on real runs, negative on
hand-built records that violate the physics."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import profile_workload
from repro.gpu import SimulatedGPU
from repro.gpu.kernel import (
    AccessKind,
    AccessPattern,
    KernelDescriptor,
    OpClass,
    StallBreakdown,
    TransferRecord,
)
from repro.testing import (
    InvariantChecker,
    InvariantViolation,
    check_descriptor,
    check_launch,
    check_stalls,
    check_transfer,
    strict_mode,
)


def _launch_one(device, **overrides):
    desc = KernelDescriptor(
        name="test_kernel", op_class=OpClass.ELEMENTWISE, threads=1024,
        fp32_flops=2048.0, bytes_read=4096.0, bytes_written=4096.0,
        **overrides,
    )
    return device.launch(desc)


# -- positive: real streams satisfy every invariant ---------------------------
def test_strict_mode_full_characterize_run():
    profile = profile_workload("ARGA", scale="test", epochs=1, seed=0,
                               strict=True)
    assert profile.launch_count > 0


def test_checker_counts_records():
    device = SimulatedGPU()
    with strict_mode(device) as checker:
        _launch_one(device)
        device.h2d(np.zeros(64, dtype=np.float32), "x")
        device.d2h(np.ones(64, dtype=np.float32), "y")
    assert checker.launches_checked == 1
    assert checker.transfers_checked == 2


def test_real_launch_passes_check():
    device = SimulatedGPU()
    check_launch(_launch_one(device))


# -- negative: corrupted records are rejected ---------------------------------
def test_bad_phase_rejected():
    desc = KernelDescriptor(name="k", op_class=OpClass.GEMM, threads=32,
                            fp32_flops=1.0, bytes_read=4.0, phase="warmup")
    with pytest.raises(InvariantViolation, match="phase"):
        check_descriptor(desc)


def test_irregular_access_requires_indices():
    desc = KernelDescriptor(
        name="k", op_class=OpClass.GATHER, threads=32, bytes_read=4.0,
        access=AccessPattern(kind=AccessKind.IRREGULAR),
    )
    with pytest.raises(InvariantViolation, match="index array"):
        check_descriptor(desc)


def test_negative_flops_rejected():
    desc = KernelDescriptor(name="k", op_class=OpClass.GEMM, threads=32,
                            fp32_flops=-1.0, bytes_read=4.0)
    with pytest.raises(InvariantViolation, match="fp32_flops"):
        check_descriptor(desc)


def test_stall_shares_must_sum_to_one():
    bad = StallBreakdown(memory_dependency=0.5, execution_dependency=0.4)
    with pytest.raises(InvariantViolation, match="sum"):
        check_stalls(bad)


def test_stall_share_out_of_range():
    bad = StallBreakdown(memory_dependency=1.2, other=-0.2)
    with pytest.raises(InvariantViolation, match="outside"):
        check_stalls(bad)


def test_corrupted_launch_metrics_rejected():
    device = SimulatedGPU()
    launch = _launch_one(device)
    for field, value, pattern in [
        ("duration_s", -1.0, "duration_s"),
        ("occupancy", 1.5, "occupancy"),
        ("ipc", 0.0, "ipc"),
        ("instructions", launch.instructions * 2, "instructions"),
    ]:
        corrupted = dataclasses.replace(launch, **{field: value})
        with pytest.raises(InvariantViolation, match=pattern):
            check_launch(corrupted)


def test_dram_exceeding_l2_rejected():
    device = SimulatedGPU()
    launch = _launch_one(device)
    bad_mem = dataclasses.replace(launch.memory,
                                  dram_bytes=launch.memory.l2_bytes * 2 + 1)
    with pytest.raises(InvariantViolation, match="dram_bytes"):
        check_launch(dataclasses.replace(launch, memory=bad_mem))


def test_hit_rate_out_of_range_rejected():
    device = SimulatedGPU()
    launch = _launch_one(device)
    bad_mem = dataclasses.replace(launch.memory, l1_hit_rate=1.01)
    with pytest.raises(InvariantViolation, match="l1_hit_rate"):
        check_launch(dataclasses.replace(launch, memory=bad_mem))


def _transfer(**overrides):
    fields = dict(direction="h2d", nbytes=256, num_values=64, num_zeros=10,
                  label="x", start_s=0.0, duration_s=1e-6, device_id=0,
                  wire_bytes=256)
    fields.update(overrides)
    return TransferRecord(**fields)


def test_bad_transfer_records_rejected():
    with pytest.raises(InvariantViolation, match="direction"):
        check_transfer(_transfer(direction="p2p"))
    with pytest.raises(InvariantViolation, match="num_zeros"):
        check_transfer(_transfer(num_zeros=65))
    with pytest.raises(InvariantViolation, match="duration_s"):
        check_transfer(_transfer(duration_s=-1.0))
    with pytest.raises(InvariantViolation, match="wire_bytes"):
        check_transfer(_transfer(wire_bytes=10_000))


def test_clock_rewind_detected():
    checker = InvariantChecker()
    checker.on_transfer(_transfer(start_s=2.0))
    with pytest.raises(InvariantViolation, match="rewound"):
        checker.on_transfer(_transfer(start_s=1.0))


def test_detach_stops_checking():
    device = SimulatedGPU()
    checker = InvariantChecker().attach(device)
    _launch_one(device)
    checker.detach()
    _launch_one(device)
    assert checker.launches_checked == 1
