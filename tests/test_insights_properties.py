"""Property tests for the insight engine's attribution tree.

``build_tree`` makes two structural promises that hold for *any* input, not
just the committed workloads: every parent's ``duration_us`` is exactly the
sum of its children's, and every classified site carries exactly one bound
class from ``BOUND_CLASSES``.  Randomized launch rows and synthetic
timelines exercise both, plus conservation (nothing attributed is invented
or dropped) and determinism of the fold itself.
"""

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.profiling import insights  # noqa: E402
from repro.profiling.trace import Span, Timeline  # noqa: E402

settings.register_profile("insights", max_examples=60, deadline=None)
settings.load_profile("insights")

COMPONENT_KEYS = tuple(insights._COMPONENT_CLASS)
STALL_KEYS = ("memory_dependency", "execution_dependency",
              "synchronization", "other")

_cycles = st.floats(min_value=0.0, max_value=1e9,
                    allow_nan=False, allow_infinity=False)
_share = st.floats(min_value=0.0, max_value=1.0,
                   allow_nan=False, allow_infinity=False)


@st.composite
def launch_rows(draw):
    # the analysis pipeline always emits the full component/stall key sets,
    # so the strategy does too (accumulators key off the first row's tables)
    return insights.LaunchRow(
        start_s=draw(st.floats(min_value=0.0, max_value=0.02)),
        duration_s=draw(st.floats(min_value=1e-7, max_value=1e-3)),
        name=draw(st.sampled_from(("gemm_fwd", "gather", "scatter_bwd"))),
        op=draw(st.sampled_from(("gemm", "gather", "elementwise"))),
        phase=draw(st.sampled_from(("forward", "backward", "loss"))),
        fp32_flops=draw(st.integers(min_value=0, max_value=10**9)),
        int32_iops=draw(st.integers(min_value=0, max_value=10**9)),
        dram_bytes=draw(st.integers(min_value=0, max_value=10**9)),
        l2_bytes=draw(st.integers(min_value=0, max_value=10**9)),
        components=draw(st.fixed_dictionaries(
            dict.fromkeys(COMPONENT_KEYS, _cycles))),
        stalls=draw(st.fixed_dictionaries(dict.fromkeys(STALL_KEYS, _share))),
    )


@st.composite
def timelines(draw):
    spans = []
    t = 0.0
    for i in range(draw(st.integers(min_value=1, max_value=3))):
        dur = draw(st.floats(min_value=1e-4, max_value=0.01))
        spans.append(Span.make(f"epoch {i}", "phase", 0, "epoch", t, t + dur))
        t += dur
    for j in range(draw(st.integers(min_value=0, max_value=6))):
        tid = draw(st.sampled_from(tuple(insights._STREAM_PHASE)))
        ts = draw(st.floats(min_value=0.0, max_value=t))
        dur = draw(st.floats(min_value=0.0, max_value=1e-3))
        spans.append(Span.make(f"{tid}.{j % 2}", "transfer", 0, tid,
                               ts, ts + dur,
                               {"nbytes": draw(st.integers(0, 1 << 20))}))
    # a stream the attributor must ignore (counter samples, markers, ...)
    spans.append(Span.make("HBM", "counter", 0, "memory", 0.0, 0.0))
    return Timeline(spans)


rows_st = st.lists(launch_rows(), max_size=12)


def _leaf_sites(node):
    for child in node.get("children", []):
        if child.get("kind") == "site":
            yield child
        else:
            yield from _leaf_sites(child)


class TestTreeInvariants:
    @given(rows=rows_st, tl=timelines())
    def test_parent_duration_is_sum_of_children(self, rows, tl):
        tree, _ = insights.build_tree(tl, rows)

        def walk(node):
            if node.get("kind") == "site":
                return node["duration_us"]
            total = sum(walk(c) for c in node["children"])
            assert node["duration_us"] == pytest.approx(total, rel=1e-9,
                                                        abs=1e-6)
            return node["duration_us"]

        walk(tree)

    @given(rows=rows_st, tl=timelines())
    def test_every_site_has_exactly_one_bound_class(self, rows, tl):
        tree, flat = insights.build_tree(tl, rows)
        for site in list(_leaf_sites(tree)) + flat:
            assert site["bound_class"] in insights.BOUND_CLASSES
            if "launches" in site:
                # kernel verdicts come from the cycle-limiter argmax
                assert (insights._COMPONENT_CLASS[site["bound"]]
                        == site["bound_class"])
            else:
                # non-kernel streams are transfer/stall time by definition
                assert site["bound_class"] == "transfer_or_stall"

    @given(rows=rows_st, tl=timelines())
    def test_attribution_conserves_total_time(self, rows, tl):
        tree, flat = insights.build_tree(tl, rows)
        expected = sum(r.duration_s for r in rows) * 1e6
        expected += sum(s.dur_us for s in tl.spans
                        if s.tid in insights._STREAM_PHASE)
        assert tree["duration_us"] == pytest.approx(expected, rel=1e-9,
                                                    abs=1e-6)
        flat_total = sum(s["duration_us"] for s in flat)
        assert flat_total == pytest.approx(expected, rel=1e-9, abs=1e-6)

    @given(rows=rows_st, tl=timelines())
    def test_bound_summary_partitions_attributed_time(self, rows, tl):
        _, flat = insights.build_tree(tl, rows)
        summ = insights._summaries(flat)
        total = sum(s["duration_us"] for s in flat)
        by_class = sum(v["duration_us"]
                       for v in summ["bound_summary"].values())
        assert by_class == pytest.approx(total, rel=1e-9, abs=1e-6)
        if total:
            shares = sum(v["share"] for v in summ["bound_summary"].values())
            assert shares == pytest.approx(1.0, abs=1e-6)

    @given(rows=rows_st, tl=timelines())
    def test_fold_is_deterministic(self, rows, tl):
        first = insights.build_tree(tl, rows)
        second = insights.build_tree(tl, rows)
        assert (json.dumps(first, sort_keys=True)
                == json.dumps(second, sort_keys=True))
