"""Kernel timing model behaviour."""

import pytest

from repro.gpu import DEFAULT_SIMULATION, KernelDescriptor, OpClass
from repro.gpu.caches import analyze as cache_analyze
from repro.gpu.timing import analyze as timing_analyze
from repro.tensor.ops.base import gemm_threads, gemm_tiles


def _run(desc):
    mem = cache_analyze(desc, DEFAULT_SIMULATION)
    return timing_analyze(desc, mem, DEFAULT_SIMULATION)


def _gemm_desc(m, k, n, threads=None):
    return KernelDescriptor(
        name="gemm", op_class=OpClass.GEMM,
        threads=threads or gemm_threads(m, n, k),
        fp32_flops=2.0 * m * k * n,
        int32_iops=0.1 * m * k * n,
        bytes_read=4.0 * (m * k + k * n),
        bytes_written=4.0 * m * n,
    )


class TestBounds:
    def test_every_kernel_pays_the_ramp(self):
        tiny = KernelDescriptor(name="t", op_class=OpClass.ELEMENTWISE,
                                threads=32, bytes_read=128, bytes_written=128)
        result = _run(tiny)
        # ramp ~= 1940 cycles ~= 1.4 us floor
        assert result.cycles > 1500

    def test_big_gemm_is_compute_bound(self):
        result = _run(_gemm_desc(4096, 4096, 4096))
        assert result.bound == "fp32"

    def test_streaming_kernel_is_memory_bound(self):
        desc = KernelDescriptor(
            name="copy", op_class=OpClass.COPY, threads=1 << 22,
            int32_iops=float(1 << 22), bytes_read=float(256 << 20),
            bytes_written=float(256 << 20),
        )
        result = _run(desc)
        assert result.bound in ("dram_bw", "l2_bw", "lsu")

    def test_duration_positive_and_finite(self):
        result = _run(_gemm_desc(128, 128, 128))
        assert 0 < result.duration_s < 1.0

    def test_ipc_under_issue_width(self):
        result = _run(_gemm_desc(2048, 2048, 2048))
        assert 0 < result.ipc <= DEFAULT_SIMULATION.device.issue_width_per_sm


class TestShapeEffects:
    def test_skinny_gemm_runs_below_peak(self):
        """Unit efficiency keeps a feature-transform GEMM under peak."""
        desc = _gemm_desc(2708, 1433, 32)
        result = _run(desc)
        achieved = desc.fp32_flops / result.duration_s
        assert achieved < 0.75 * DEFAULT_SIMULATION.device.peak_fp32_flops

    def test_tiny_gemm_is_ramp_bound(self):
        """A 64^3 GEMM is dominated by pipeline ramp, far from peak."""
        desc = _gemm_desc(64, 64, 64)
        result = _run(desc)
        achieved = desc.fp32_flops / result.duration_s
        assert achieved < 0.05 * DEFAULT_SIMULATION.device.peak_fp32_flops

    def test_split_k_parallelizes_weight_gradients(self):
        """wgrad GEMMs (tiny m, n; huge k) must not serialize on one SM."""
        with_split = gemm_threads(32, 32, k=16384)
        without = gemm_tiles(32, 32)[2] * 256
        assert with_split >= 8 * without

    def test_unit_efficiency_slows_conv(self):
        conv = KernelDescriptor(
            name="c", op_class=OpClass.CONV2D, threads=1 << 18,
            fp32_flops=1e9, bytes_read=1 << 22, bytes_written=1 << 22,
        )
        gemm = KernelDescriptor(
            name="g", op_class=OpClass.GEMM, threads=1 << 18,
            fp32_flops=1e9, bytes_read=1 << 22, bytes_written=1 << 22,
        )
        assert _run(conv).duration_s > _run(gemm).duration_s

    def test_compute_scale_inflates_cycles(self):
        base = _gemm_desc(512, 512, 512)
        padded = _gemm_desc(512, 512, 512)
        padded.compute_scale = 2.0
        assert _run(padded).cycles > 1.5 * _run(base).cycles

    def test_few_blocks_cannot_use_all_sms(self):
        narrow = _gemm_desc(64, 8192, 32, threads=256)
        wide = _gemm_desc(64, 8192, 32, threads=256 * 160)
        assert _run(narrow).cycles > _run(wide).cycles


class TestInstructionDerivation:
    def test_fma_halves_fp32_instructions(self):
        desc = _gemm_desc(256, 256, 256)
        result = _run(desc)
        fma = DEFAULT_SIMULATION.profile_for("GEMM").fma_fraction
        assert result.fp32_instrs == pytest.approx(desc.fp32_flops / (1 + fma))

    def test_int32_maps_one_to_one(self):
        desc = _gemm_desc(256, 256, 256)
        assert _run(desc).int32_instrs == pytest.approx(desc.int32_iops)

    def test_control_default_filled_in(self):
        desc = KernelDescriptor(name="x", op_class=OpClass.ELEMENTWISE,
                                threads=1024, fp32_flops=1024.0,
                                int32_iops=4096.0, bytes_read=4096,
                                bytes_written=4096)
        assert _run(desc).control_instrs > 0
