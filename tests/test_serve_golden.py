"""Golden snapshot + determinism matrix for serving reports.

Mirrors ``tests/test_memory_golden.py``: the committed
``tests/golden/serve_*.json`` snapshots pin every field of the serving
report (latency quantiles, batch histogram, HBM peaks, digest), and the
determinism matrix shows the report is a pure function of its parameters
— byte-identical across repeat runs, worker counts, profile-cache
warm/cold, and analysis-cache on/off.
"""

import json

import pytest

from repro.core import executor
from repro.serve.server import digest_report, serve_report
from repro.testing import golden
from tests.golden_matrix import GoldenMatrix

KEYS = list(golden.SERVE_GOLDEN_KEYS)


class TestCommittedSnapshots:
    @pytest.mark.parametrize("key", KEYS)
    def test_snapshot_exists_and_is_wellformed(self, key):
        report = golden.load_serve_golden(key)
        assert report["workload"] == key
        assert report["completed"] == report["requests"]
        assert report["serve_digest"] == digest_report(report)
        q = report["latency_us"]
        assert q["p50"] <= q["p95"] <= q["p99"] <= q["max"]

    def test_fresh_runs_match_goldens(self):
        diffs = golden.verify_serve_goldens(KEYS)
        assert diffs == {key: [] for key in KEYS}

    def test_digest_drift_is_reported_last(self):
        expected = golden.load_serve_golden("DGCN")
        mutated = json.loads(json.dumps(expected))
        mutated["batches"] += 1
        mutated["serve_digest"] = digest_report(mutated)
        diff = golden.compare_serve_reports(expected, mutated)
        assert any("batches" in line for line in diff)
        assert "serve_digest" in diff[-1]


class TestDeterminism(GoldenMatrix):
    keys = KEYS

    def run_single(self):
        return serve_report("DGCN", scale="test", requests=24, qps=200.0)

    def run_suite(self, *, jobs=None, cache=None):
        return executor.serve_suite(KEYS, requests=24, jobs=jobs, cache=cache)

    def run_analysis(self):
        return serve_report("PSAGE-MVL", scale="test", requests=24)
