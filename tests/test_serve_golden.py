"""Golden snapshot + determinism matrix for serving reports.

Mirrors ``tests/test_memory_golden.py``: the committed
``tests/golden/serve_*.json`` snapshots pin every field of the serving
report (latency quantiles, batch histogram, HBM peaks, digest), and the
determinism matrix shows the report is a pure function of its parameters
— byte-identical across repeat runs, worker counts, profile-cache
warm/cold, and analysis-cache on/off.
"""

import json

import pytest

from repro.core import executor
from repro.core.cache import ProfileCache
from repro.gpu import analysis_cache
from repro.serve.server import digest_report, serve_report
from repro.testing import golden

KEYS = list(golden.SERVE_GOLDEN_KEYS)


def _canonical(report) -> str:
    return json.dumps(report, sort_keys=True)


class TestCommittedSnapshots:
    @pytest.mark.parametrize("key", KEYS)
    def test_snapshot_exists_and_is_wellformed(self, key):
        report = golden.load_serve_golden(key)
        assert report["workload"] == key
        assert report["completed"] == report["requests"]
        assert report["serve_digest"] == digest_report(report)
        q = report["latency_us"]
        assert q["p50"] <= q["p95"] <= q["p99"] <= q["max"]

    def test_fresh_runs_match_goldens(self):
        diffs = golden.verify_serve_goldens(KEYS)
        assert diffs == {key: [] for key in KEYS}

    def test_digest_drift_is_reported_last(self):
        expected = golden.load_serve_golden("DGCN")
        mutated = json.loads(json.dumps(expected))
        mutated["batches"] += 1
        mutated["serve_digest"] = digest_report(mutated)
        diff = golden.compare_serve_reports(expected, mutated)
        assert any("batches" in line for line in diff)
        assert "serve_digest" in diff[-1]


class TestDeterminism:
    def test_repeat_runs_byte_identical(self):
        a = serve_report("DGCN", scale="test", requests=24, qps=200.0)
        b = serve_report("DGCN", scale="test", requests=24, qps=200.0)
        assert _canonical(a) == _canonical(b)

    def test_jobs_do_not_change_reports(self):
        serial = executor.serve_suite(KEYS, requests=24, jobs=1, cache=False)
        forked = executor.serve_suite(KEYS, requests=24, jobs=2, cache=False)
        for key in KEYS:
            assert _canonical(serial[key]) == _canonical(forked[key]), key

    def test_profile_cache_replays_identically(self, tmp_path):
        cache = ProfileCache(tmp_path)
        cold = executor.serve_suite(KEYS, requests=24, cache=cache)
        warm = executor.serve_suite(KEYS, requests=24, cache=cache)
        assert cache.hits >= len(KEYS)
        for key in KEYS:
            assert _canonical(cold[key]) == _canonical(warm[key]), key

    def test_analysis_cache_does_not_change_report(self):
        with analysis_cache.override(True):
            cached = serve_report("PSAGE-MVL", scale="test", requests=24)
        with analysis_cache.override(False):
            uncached = serve_report("PSAGE-MVL", scale="test", requests=24)
        # launch-analysis memoization is a speed knob, not a semantics knob:
        # everything except the hit/miss ratio must be byte-identical
        assert _canonical(cached) == _canonical(uncached)
