"""Unit and integration tests for the serving simulation (``repro.serve``).

Covers the three layers separately — arrival generation, the pure
batcher/queueing loop, and the full ``serve_run`` pipeline on real
workloads — plus the trace/metrics integrations and the
``profile_inference`` timeline regression.
"""

import json

import numpy as np
import pytest

from repro.profiling import metrics as metrics_mod
from repro.profiling import trace
from repro.serve import (
    ARRIVALS,
    Request,
    generate_requests,
    run_queue,
    serve_run,
)
from repro.serve import server as serve_server


def _affine_runner(base_s=1e-4, per_req_s=2e-5):
    """Synthetic device-free batch cost: affine in batch size."""

    def run_batch(members, start_s):
        return start_s + base_s + per_req_s * len(members)

    return run_batch


class TestArrivals:
    def test_deterministic_and_sorted(self):
        for arrival in ARRIVALS:
            a = generate_requests(100, qps=200.0, arrival=arrival,
                                  population=50, seed=7)
            b = generate_requests(100, qps=200.0, arrival=arrival,
                                  population=50, seed=7)
            assert a == b
            times = [r.arrival_s for r in a]
            assert times == sorted(times)
            assert all(t > 0 for t in times)
            assert [r.index for r in a] == list(range(100))

    def test_seed_changes_schedule(self):
        a = generate_requests(50, qps=100.0, population=10, seed=0)
        b = generate_requests(50, qps=100.0, population=10, seed=1)
        assert [r.arrival_s for r in a] != [r.arrival_s for r in b]

    def test_entities_within_population(self):
        reqs = generate_requests(200, qps=100.0, arrival="bursty",
                                 population=13, num_users=5, seed=3)
        assert all(0 <= r.entity < 13 for r in reqs)
        assert all(0 <= r.user < 5 for r in reqs)

    def test_empirical_rate_near_qps(self):
        # Mean arrival rate over a long run should approach qps for both
        # processes (the MMPP's two states average back to qps).
        for arrival in ARRIVALS:
            reqs = generate_requests(2000, qps=100.0, arrival=arrival,
                                     population=10, seed=0)
            rate = len(reqs) / reqs[-1].arrival_s
            assert rate == pytest.approx(100.0, rel=0.15)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError, match="requests"):
            generate_requests(0, qps=10.0, population=1)
        with pytest.raises(ValueError, match="qps"):
            generate_requests(1, qps=0.0, population=1)
        with pytest.raises(ValueError, match="arrival"):
            generate_requests(1, qps=10.0, arrival="uniform", population=1)


class TestQueueing:
    def _mkreqs(self, arrivals):
        return [Request(index=i, user=0, entity=i, arrival_s=t)
                for i, t in enumerate(arrivals)]

    def test_max_wait_forces_dispatch(self):
        # One lonely request: dispatched exactly max_wait after arrival.
        reqs = self._mkreqs([0.010])
        served, batches = run_queue(reqs, batch_max=8, max_wait_s=0.002,
                                    run_batch=_affine_runner())
        assert len(batches) == 1
        assert batches[0].dispatch_s == pytest.approx(0.012)
        assert served[0].wait_s == pytest.approx(0.002)

    def test_full_batch_dispatches_early(self):
        # Four near-simultaneous arrivals with batch_max=4: the batch goes
        # as soon as the fourth arrives, not at head.arrival + max_wait.
        reqs = self._mkreqs([0.001, 0.0011, 0.0012, 0.0013])
        served, batches = run_queue(reqs, batch_max=4, max_wait_s=0.050,
                                    run_batch=_affine_runner())
        assert len(batches) == 1
        assert batches[0].dispatch_s == pytest.approx(0.0013)
        assert batches[0].size == 4

    def test_batch_max_caps_and_splits(self):
        reqs = self._mkreqs([0.001] * 10)
        served, batches = run_queue(reqs, batch_max=4, max_wait_s=0.010,
                                    run_batch=_affine_runner())
        assert [b.size for b in batches] == [4, 4, 2]
        # FIFO: concatenated members recover arrival order
        flat = [m for b in batches for m in b.members]
        assert flat == list(range(10))

    def test_late_join_rides_busy_server(self):
        # While the server is busy with batch 0, more requests arrive; they
        # join the queue and are admitted when the server frees up.
        runner = _affine_runner(base_s=0.010, per_req_s=0.0)
        reqs = self._mkreqs([0.001, 0.002, 0.003])
        served, batches = run_queue(reqs, batch_max=8, max_wait_s=0.0005,
                                    run_batch=runner)
        assert batches[0].members == (0,)
        # requests 1 and 2 arrived while batch 0 computed -> one batch
        assert batches[1].members == (1, 2)
        assert batches[1].start_s >= batches[0].complete_s

    def test_conservation(self):
        reqs = self._mkreqs(list(np.cumsum(np.full(37, 0.0007))))
        served, batches = run_queue(reqs, batch_max=5, max_wait_s=0.001,
                                    run_batch=_affine_runner())
        assert len(served) == len(reqs)
        assert sum(b.size for b in batches) == len(reqs)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError, match="batch_max"):
            run_queue([], batch_max=0, max_wait_s=0.0,
                      run_batch=_affine_runner())
        with pytest.raises(ValueError, match="max_wait_s"):
            run_queue([], batch_max=1, max_wait_s=-1.0,
                      run_batch=_affine_runner())

    def test_time_travelling_runner_rejected(self):
        reqs = self._mkreqs([0.001])
        with pytest.raises(RuntimeError, match="complete"):
            run_queue(reqs, batch_max=1, max_wait_s=0.0,
                      run_batch=lambda members, start_s: start_s - 1.0)


SERVE_KWARGS = dict(scale="test", qps=200.0, arrival="poisson",
                    batch_max=8, max_wait_us=2000.0, requests=48,
                    num_users=16, seed=0)


class TestServeRun:
    @pytest.fixture(scope="class")
    def psage_result(self):
        report, timeline = serve_run("PSAGE-MVL", traced=True,
                                     **SERVE_KWARGS)
        return report, timeline

    def test_report_invariants(self, psage_result):
        report, _ = psage_result
        assert report["completed"] == report["requests"] == 48
        assert sum(report["batch_size_hist"].values()) == report["batches"]
        assert all(1 <= int(s) <= report["batch_max"]
                   for s in report["batch_size_hist"])
        assert report["captured_plans"] + report["replayed_batches"] \
            == report["batches"]
        assert report["throughput_rps"] > 0
        assert report["peak_reserved_bytes"] > 0
        assert report["peak_live_bytes"] > 0
        assert report["oom_events"] == 0
        for block in ("latency_us", "wait_us", "compute_us"):
            q = report[block]
            assert q["p50"] <= q["p95"] <= q["p99"] <= q["max"]
            assert q["max"] > 0
        # latency decomposes into queueing + compute at every quantile's
        # underlying sample, so the maxima obey the triangle bound
        assert report["latency_us"]["max"] <= (
            report["wait_us"]["max"] + report["compute_us"]["max"] + 1e-6)

    def test_digest_repeatable_and_traced_invariant(self, psage_result):
        report, _ = psage_result
        again, _ = serve_run("PSAGE-MVL", traced=False, **SERVE_KWARGS)
        # tracing must not perturb the simulation: byte-identical reports
        assert json.dumps(report, sort_keys=True) \
            == json.dumps(again, sort_keys=True)
        assert serve_server.digest_report(report) == report["serve_digest"]

    def test_trace_streams_round_trip(self, psage_result):
        report, timeline = psage_result
        counts = timeline.span_counts()
        assert counts.get("queue") == report["requests"]
        assert counts.get("serve") == report["batches"]
        assert counts.get("kernel", 0) > 0
        chrome = timeline.to_chrome()
        trace.validate_chrome(chrome)
        back = trace.Timeline.from_chrome(chrome)
        assert back.span_counts().get("serve") == report["batches"]
        # queue spans sit on their own stream, after serve in the lane order
        names = {ev["name"] for ev in chrome["traceEvents"]
                 if ev.get("cat") == "queue"}
        assert any(name.startswith("req ") for name in names)

    def test_metrics_registry_carries_serve_gauges(self, psage_result):
        report, _ = psage_result
        metrics_mod.reset()
        metrics_mod.collect_serve(report)
        text = metrics_mod.registry().to_prometheus()
        assert "repro_serve_latency_us" in text
        assert "repro_serve_throughput_rps" in text
        assert 'workload="PSAGE-MVL"' in text
        assert 'arrival="poisson"' in text

    def test_bursty_deterministic(self):
        kwargs = dict(SERVE_KWARGS, arrival="bursty", requests=32)
        r1, _ = serve_run("DGCN", **kwargs)
        r2, _ = serve_run("DGCN", **kwargs)
        assert r1 == r2
        assert r1["arrival"] == "bursty"

    def test_unserveable_key_rejected(self):
        with pytest.raises(ValueError, match="no serving engine"):
            serve_run("TLSTM", **SERVE_KWARGS)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError, match="qps"):
            serve_run("DGCN", **dict(SERVE_KWARGS, qps=0.0))
        with pytest.raises(ValueError, match="batch-max"):
            serve_run("DGCN", **dict(SERVE_KWARGS, batch_max=0))
        with pytest.raises(ValueError, match="max-wait-us"):
            serve_run("DGCN", **dict(SERVE_KWARGS, max_wait_us=-1.0))


class TestInferenceTimeline:
    def test_profile_inference_carries_phase_spans(self):
        # Regression: profile_inference used to skip the tracer entirely,
        # returning an empty timeline_summary unlike profile_workload.
        from repro.core.characterize import profile_inference

        profile = profile_inference("DGCN", scale="test")
        summary = profile.timeline_summary
        assert summary, "inference profile should carry a timeline summary"
        assert summary["span_count"] > 0
        assert "forward" in summary["phase_occupancy"]
        assert "backward" not in summary["phase_occupancy"]

    def test_caller_tracer_wins(self):
        from repro.core.characterize import profile_inference

        tracer = trace.install(trace.Tracer())
        try:
            profile = profile_inference("DGCN", scale="test")
        finally:
            trace.uninstall()
        # caller-owned trace: the profile must not hijack the summary
        assert profile.timeline_summary == {}
