"""Warp-divergence measurement (the NVBit substitute)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import AccessPattern, measure_divergence


class TestCoalesced:
    def test_fp32_coalesced_has_misalignment_floor(self):
        res = measure_divergence(AccessPattern.coalesced(4))
        # unaligned rows straddle two lines a quarter of the time
        assert res.divergent_fraction == pytest.approx(0.25)
        assert res.lines_per_warp == pytest.approx(1.25)

    def test_wide_elements_span_lines(self):
        res = measure_divergence(AccessPattern.coalesced(8))
        assert res.lines_per_warp >= 2.0


class TestStrided:
    def test_small_stride_single_line(self):
        res = measure_divergence(AccessPattern.strided(4, 4))
        assert res.lines_per_warp == pytest.approx(1.0)

    def test_large_stride_touches_many_lines(self):
        res = measure_divergence(AccessPattern.strided(512, 4))
        assert res.lines_per_warp == pytest.approx(32.0)
        assert res.divergent_fraction == 1.0

    def test_stride_lines_capped_at_warp_size(self):
        res = measure_divergence(AccessPattern.strided(10_000, 4))
        assert res.lines_per_warp <= 32.0


class TestIrregular:
    def test_sequential_indices_not_divergent(self):
        idx = np.arange(32 * 64)
        res = measure_divergence(AccessPattern.irregular(idx, 4))
        assert res.lines_per_warp == pytest.approx(1.0)
        assert res.divergent_fraction == 0.0

    def test_random_indices_fully_divergent(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 1 << 20, size=32 * 64)
        res = measure_divergence(AccessPattern.irregular(idx, 4))
        assert res.divergent_fraction == pytest.approx(1.0)
        assert res.lines_per_warp > 16

    def test_repeated_single_index_one_line(self):
        idx = np.zeros(32 * 8, dtype=np.int64)
        res = measure_divergence(AccessPattern.irregular(idx, 4))
        assert res.lines_per_warp == pytest.approx(1.0)
        assert res.unique_line_fraction < 0.01

    def test_empty_indices_assume_worst_case(self):
        res = measure_divergence(AccessPattern.irregular(np.empty(0), 4))
        assert res.divergent_fraction == 1.0

    def test_matches_brute_force_on_small_input(self):
        rng = np.random.default_rng(3)
        idx = rng.integers(0, 4096, size=320)
        res = measure_divergence(AccessPattern.irregular(idx, 4))
        lines = (idx * 4) // 128
        warps = lines[: (lines.size // 32) * 32].reshape(-1, 32)
        distinct = np.array([np.unique(w).size for w in warps])
        assert res.lines_per_warp == pytest.approx(distinct.mean())
        assert res.divergent_fraction == pytest.approx((distinct > 1).mean())

    @given(st.integers(1, 2000), st.integers(1, 1 << 16))
    @settings(max_examples=30, deadline=None)
    def test_bounds_hold_for_any_stream(self, n, hi):
        rng = np.random.default_rng(n)
        idx = rng.integers(0, hi, size=n)
        res = measure_divergence(AccessPattern.irregular(idx, 4))
        assert 0.0 <= res.divergent_fraction <= 1.0
        assert 1.0 <= res.lines_per_warp <= 32.0
        assert 0.0 < res.unique_line_fraction <= 1.0

    def test_sampling_keeps_statistics(self):
        """A >4096-entry stream is sampled but stats stay representative."""
        rng = np.random.default_rng(5)
        idx = rng.integers(0, 1 << 18, size=100_000)
        res = measure_divergence(AccessPattern.irregular(idx, 4), sample=4096)
        assert res.divergent_fraction > 0.95
