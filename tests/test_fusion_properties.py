"""Property-based legality tests for the elementwise kernel-fusion pass.

:func:`repro.gpu.graph_capture.fuse_events` returns both the rewritten event
list and every ``(fused_launch, members)`` run it created, so fusion legality
is checkable as a reconstruction property: expanding each fused kernel back
into its members must reproduce the input event list *exactly*.  Any illegal
fusion — across a phase or epoch boundary, a reduction, a transfer, a device
change, a reordering — breaks reconstruction.

Random sequences come from :mod:`repro.testing.launch_sequences`; explicit
examples pin down each individual barrier kind.
"""

import numpy as np
import pytest

from repro.gpu import SimulatedGPU
from repro.gpu.graph_capture import _compatible, fuse_events, fuse_run, fusible
from repro.gpu.kernel import AccessPattern, OpClass
from repro.testing.launch_sequences import (
    EPOCH_BOUNDARY,
    make_launch,
    make_transfer,
    random_events,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402

from repro.testing.launch_sequences import events  # noqa: E402


@pytest.fixture(scope="module")
def sim():
    return SimulatedGPU().sim


def reconstruct(out_events, runs):
    """Expand every fused kernel in ``out_events`` back into its members."""
    members_of = {id(fused): members for fused, members in runs}
    expanded = []
    for event in out_events:
        if event[0] == "K" and id(event[1]) in members_of:
            expanded.extend(("K", m) for m in members_of[id(event[1])])
        else:
            expanded.append(event)
    return expanded


def check_fusion(events_in, sim):
    """All fusion invariants on one input sequence."""
    out, runs = fuse_events(events_in, sim)

    # 1. Reconstruction: expanding fused kernels reproduces the input
    #    exactly (same objects, same order) — proves every run is a block of
    #    *adjacent* events and nothing was dropped, duplicated or reordered,
    #    hence no run crossed any barrier event.
    assert reconstruct(out, runs) == events_in

    for fused, members in runs:
        # 2. Run legality: >= 2 members, all individually fusible, uniform
        #    along every compatibility axis.
        assert len(members) >= 2
        head = members[0]
        for m in members:
            assert fusible(m)
            assert _compatible(head, m)
            assert m.device_id == head.device_id
            assert m.descriptor.phase == head.descriptor.phase
            assert m.descriptor.block_size == head.descriptor.block_size
            assert (m.descriptor.access.element_bytes
                    == head.descriptor.access.element_bytes)

        # 3. Exact cost conservation: the fused descriptor's counts are the
        #    member sums.  fuse_run sums in member order, so with the
        #    integer-valued counts the generator emits this is exact FP
        #    equality, not approximate.
        d = fused.descriptor
        assert d.fp32_flops == sum(m.descriptor.fp32_flops for m in members)
        assert d.int32_iops == sum(m.descriptor.int32_iops for m in members)
        assert d.ldst_instrs == sum(m.descriptor.ldst_instrs for m in members)
        assert d.control_instrs == sum(
            m.descriptor.control_instrs for m in members)
        assert d.bytes_read == sum(m.descriptor.bytes_read for m in members)
        assert d.bytes_written == sum(
            m.descriptor.bytes_written for m in members)
        assert d.threads == max(m.descriptor.threads for m in members)
        # the fused kernel inherits the run's shared geometry and remains
        # itself a legal fusion candidate
        assert d.op_class is OpClass.ELEMENTWISE
        assert d.phase == head.descriptor.phase
        assert d.block_size == head.descriptor.block_size
        assert fused.device_id == head.device_id
        assert fusible(fused)
        assert d.name == f"fused_elementwise_x{len(members)}"
        # re-analysis happened: the fused launch has real timing
        assert fused.duration_s > 0.0

    # 4. Barrier events survive untouched, in order.
    assert [e for e in events_in if e[0] != "K"] == \
        [e for e in out if e[0] != "K"]

    # 5. Maximality: no two adjacent output kernels could have been fused
    #    with each other (otherwise the run wasn't maximal).
    for a, b in zip(out, out[1:]):
        if a[0] == "K" and b[0] == "K":
            assert not (fusible(a[1]) and fusible(b[1])
                        and _compatible(a[1], b[1]))
    return out, runs


@given(events())
@settings(max_examples=150, deadline=None)
def test_fusion_properties_hypothesis(seq):
    check_fusion(seq, SimulatedGPU().sim)


def test_fusion_properties_seeded(sim):
    rng = np.random.default_rng(1234)
    total_runs = 0
    for _ in range(30):
        _, runs = check_fusion(random_events(rng, size=60), sim)
        total_runs += len(runs)
    # the generator must actually exercise fusion, not vacuously pass
    assert total_runs > 20


def test_deterministic(sim):
    seq = random_events(np.random.default_rng(7), size=50)
    out1, runs1 = fuse_events(seq, sim)
    out2, runs2 = fuse_events(seq, sim)
    assert len(out1) == len(out2) and len(runs1) == len(runs2)
    for (f1, m1), (f2, m2) in zip(runs1, runs2):
        assert f1.descriptor == f2.descriptor
        assert f1.duration_s == f2.duration_s
        assert m1 == m2


# -- explicit barrier examples ------------------------------------------------

def _kernels_of(out):
    return [e[1] for e in out if e[0] == "K"]


def test_plain_run_fuses(sim):
    seq = [make_launch("add"), make_launch("mul"), make_launch("relu")]
    out, runs = fuse_events(seq, sim)
    assert len(out) == 1 and len(runs) == 1
    assert runs[0][0].descriptor.name == "fused_elementwise_x3"


def test_reduction_is_barrier(sim):
    seq = [make_launch("add"), make_launch("mul"),
           make_launch("rowsum", op_class=OpClass.REDUCTION,
                       reuse_factor=1.5),
           make_launch("relu"), make_launch("sigmoid")]
    out, runs = fuse_events(seq, sim)
    assert [k.descriptor.name for k in _kernels_of(out)] == \
        ["fused_elementwise_x2", "rowsum", "fused_elementwise_x2"]
    assert len(runs) == 2


def test_transfer_is_barrier(sim):
    seq = [make_launch("add"), make_transfer(), make_launch("mul")]
    out, runs = fuse_events(seq, sim)
    assert runs == []
    assert out == seq


def test_epoch_boundary_is_barrier(sim):
    seq = [make_launch("add"), make_launch("mul"),
           EPOCH_BOUNDARY,
           make_launch("relu"), make_launch("sigmoid")]
    out, runs = fuse_events(seq, sim)
    assert len(runs) == 2
    assert out[1] is EPOCH_BOUNDARY
    for _, members in runs:
        assert len(members) == 2


def test_phase_change_is_barrier(sim):
    seq = [make_launch("add", phase="forward"),
           make_launch("mul", phase="forward"),
           make_launch("relu", phase="backward"),
           make_launch("sigmoid", phase="backward")]
    out, runs = fuse_events(seq, sim)
    assert len(runs) == 2
    assert {f.descriptor.phase for f, _ in runs} == {"forward", "backward"}


def test_device_change_is_barrier(sim):
    seq = [make_launch("add", device_id=0), make_launch("mul", device_id=0),
           make_launch("relu", device_id=1), make_launch("sigmoid", device_id=1)]
    out, runs = fuse_events(seq, sim)
    assert len(runs) == 2
    assert sorted(f.device_id for f, _ in runs) == [0, 1]


def test_geometry_changes_are_barriers(sim):
    for kw in ({"block_size": 128}, {"element_bytes": 8}):
        seq = [make_launch("add"), make_launch("mul", **kw)]
        _, runs = fuse_events(seq, sim)
        assert runs == [], kw


def test_unfusible_elementwise_variants(sim):
    assert not fusible(make_launch("ew", reuse_factor=1.5)[1])
    assert not fusible(make_launch("ew", compute_scale=2.0)[1])
    assert not fusible(
        make_launch("ew", access=AccessPattern.strided(128))[1])
    assert not fusible(make_launch("gemm", op_class=OpClass.GEMM)[1])
    assert fusible(make_launch("ew")[1])


def test_singleton_not_fused(sim):
    seq = [make_launch("add"), make_transfer(), make_launch("mul")]
    out, runs = fuse_events(seq, sim)
    assert runs == [] and _kernels_of(out)[0].descriptor.name == "add"


def test_fuse_run_work_conservation_large(sim):
    members = [make_launch("add", fp32_flops=float(i * 1000),
                           int32_iops=float(i), bytes_read=float(i * 64),
                           bytes_written=float(i * 32),
                           threads=32 * (i + 1))[1]
               for i in range(10)]
    fused = fuse_run(members, sim)
    assert fused.descriptor.fp32_flops == sum(
        m.descriptor.fp32_flops for m in members)
    assert fused.descriptor.threads == max(
        m.descriptor.threads for m in members)
    assert fused.descriptor.working_set_bytes == sum(
        m.descriptor.working_set_bytes for m in members)
