"""Caching HBM allocator and device-memory tracker behaviour."""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import SimulatedGPU
from repro.gpu.memory import (
    LARGE_BLOCK_QUANTUM,
    SMALL_BLOCK_QUANTUM,
    SMALL_POOL_LIMIT,
    DeviceMemoryTracker,
    MemoryPool,
    OOMError,
    round_block,
    track,
)

CAP = 1 << 30  # 1 GiB — ample for every generated sequence


class TestRoundBlock:
    def test_minimum_is_one_quantum(self):
        assert round_block(1) == SMALL_BLOCK_QUANTUM

    def test_small_pool_quantum(self):
        assert round_block(SMALL_BLOCK_QUANTUM + 1) == 2 * SMALL_BLOCK_QUANTUM

    def test_large_pool_quantum(self):
        block = round_block(SMALL_POOL_LIMIT + 1)
        assert block % LARGE_BLOCK_QUANTUM == 0

    @given(st.integers(min_value=1, max_value=1 << 28))
    @settings(max_examples=200, deadline=None)
    def test_covers_and_is_idempotent(self, nbytes):
        block = round_block(nbytes)
        assert block >= nbytes
        quantum = (SMALL_BLOCK_QUANTUM if nbytes < SMALL_POOL_LIMIT
                   else LARGE_BLOCK_QUANTUM)
        assert block % quantum == 0
        assert round_block(block) == block


# an op sequence: positive = alloc that many bytes, negative = free the
# (|n| mod live)-th oldest live block — deterministic for a given list
op_sequences = st.lists(
    st.integers(min_value=-100, max_value=1 << 22).filter(lambda n: n != 0),
    min_size=1, max_size=80,
)


def _replay(pool: MemoryPool, ops, check=None):
    live: list[tuple[int, int]] = []  # (block, requested)
    for op in ops:
        if op > 0:
            live.append((pool.alloc(op), op))
        elif live:
            block, requested = live.pop(abs(op) % len(live))
            pool.free(block, requested)
        if check is not None:
            check(pool)
    return live


class TestPoolInvariants:
    @given(op_sequences)
    @settings(max_examples=100, deadline=None)
    def test_live_le_reserved_le_peaks(self, ops):
        pool = MemoryPool(CAP)

        def check(p):
            assert 0 <= p.live_bytes <= p.reserved_bytes
            assert p.live_bytes <= p.peak_live_bytes
            assert p.reserved_bytes <= p.peak_reserved_bytes
            assert p.peak_live_bytes <= p.peak_reserved_bytes
            assert 0.0 <= p.fragmentation() <= 1.0
            assert 0.0 <= p.internal_fragmentation() < 1.0

        _replay(pool, ops, check)

    @given(op_sequences, st.integers(min_value=1, max_value=1 << 22))
    @settings(max_examples=100, deadline=None)
    def test_free_after_alloc_restores_live(self, ops, nbytes):
        pool = MemoryPool(CAP)
        _replay(pool, ops)
        live_before = pool.live_bytes
        reserved_before = pool.reserved_bytes
        block = pool.alloc(nbytes)
        assert pool.live_bytes == live_before + block
        pool.free(block, nbytes)
        assert pool.live_bytes == live_before
        # freed blocks stay cached: the footprint never shrinks on free
        assert pool.reserved_bytes >= reserved_before

    @given(op_sequences, st.integers(min_value=1, max_value=1 << 22))
    @settings(max_examples=100, deadline=None)
    def test_reuse_never_grows_reserved(self, ops, nbytes):
        """When a cached block of the right bucket exists, allocation must
        come from the cache — reserved bytes stay put."""
        pool = MemoryPool(CAP)
        _replay(pool, ops)
        # guarantee a fitting cached block regardless of the op sequence
        pool.free(pool.alloc(nbytes), nbytes)
        assert pool.cached_blocks(nbytes) > 0
        reserved = pool.reserved_bytes
        reuses = pool.bucket_reuse_count
        pool.alloc(nbytes)
        assert pool.reserved_bytes == reserved
        assert pool.bucket_reuse_count == reuses + 1

    @given(op_sequences)
    @settings(max_examples=100, deadline=None)
    def test_counts_balance(self, ops):
        pool = MemoryPool(CAP)
        live = _replay(pool, ops)
        assert pool.alloc_count == pool.free_count + len(live)
        assert pool.segment_allocs + pool.bucket_reuse_count == pool.alloc_count

    def test_trim_releases_cached_blocks_only(self):
        pool = MemoryPool(CAP)
        keep = pool.alloc(4096)
        dead = pool.alloc(8192)
        pool.free(dead, 8192)
        freed = pool.trim()
        assert freed == round_block(8192)
        assert pool.reserved_bytes == pool.live_bytes == keep
        assert pool.cached_blocks(8192) == 0

    def test_epoch_watermarks_record_interval_peaks(self):
        pool = MemoryPool(CAP)
        a = pool.alloc(1 << 20)
        pool.free(a, 1 << 20)
        pool.end_epoch()
        pool.alloc(1 << 10)
        pool.end_epoch()
        assert pool.epoch_watermarks[0] == round_block(1 << 20)
        assert pool.epoch_watermarks[1] == round_block(1 << 10)

    def test_reset_restores_pristine_state(self):
        pool = MemoryPool(CAP)
        pool.free(pool.alloc(4096), 4096)
        pool.reset()
        assert pool.stats() == MemoryPool(CAP).stats()


class TestOOM:
    def test_warns_once_and_records_event(self):
        pool = MemoryPool(capacity_bytes=1024)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pool.alloc(4096, label="big", phase="forward")
            pool.alloc(4096)
        assert len(pool.oom_events) == 2
        assert len(caught) == 1  # warn once, record every violation
        event = pool.oom_events[0]
        assert event.label == "big" and event.phase == "forward"
        assert event.reserved_bytes > event.capacity_bytes

    def test_strict_raises(self):
        pool = MemoryPool(capacity_bytes=1024)
        pool.strict = True
        with pytest.raises(OOMError):
            pool.alloc(1 << 20, label="huge")

    def test_reuse_never_ooms(self):
        """Serving from the cache adds no footprint, so it can't violate
        capacity even when the pool is full."""
        block = round_block(1024)
        pool = MemoryPool(capacity_bytes=block)
        pool.free(pool.alloc(1024), 1024)
        pool.strict = True
        pool.alloc(1024)  # must not raise
        assert not pool.oom_events


class TestTracker:
    def test_track_installs_and_uninstalls(self, gpu):
        from repro.gpu import memory

        assert memory.active() is None
        with track(gpu) as tracker:
            assert memory.active() is tracker
        assert memory.active() is None

    def test_nested_track_rejected(self, gpu):
        with track(gpu):
            with pytest.raises(RuntimeError):
                with track(gpu):
                    pass

    def test_views_never_double_count(self, gpu):
        with track(gpu) as tracker:
            base = np.ones(1024, dtype=np.float32)
            tracker.register(base, label="x")
            live = gpu.memory.live_bytes
            tracker.register(base[10:20], label="view")
            tracker.register(base.reshape(32, 32), label="reshape")
            assert gpu.memory.live_bytes == live
            assert gpu.memory.alloc_count == 1

    def test_finalizer_frees_on_buffer_death(self, gpu):
        with track(gpu) as tracker:
            buf = np.ones(4096, dtype=np.float32)
            tracker.register(buf, label="x")
            assert gpu.memory.live_bytes > 0
            del buf
            assert gpu.memory.live_bytes == 0
            assert gpu.memory.free_count == 1

    def test_closed_tracker_ignores_late_finalizers(self, gpu):
        with track(gpu) as tracker:
            buf = np.ones(4096, dtype=np.float32)
            tracker.register(buf, label="x")
        free_count = gpu.memory.free_count
        del buf  # fires after close(): must be a no-op
        assert gpu.memory.free_count == free_count

    def test_h2d_registers_through_device(self, gpu):
        with track(gpu):
            staged = np.ones(1024, dtype=np.float32)
            gpu.h2d(staged, "input")
            assert gpu.memory.live_bytes == round_block(staged.nbytes)
            assert "input" in gpu.memory.label_stats

    def test_track_resets_pool_on_entry(self, gpu):
        gpu.memory.alloc(4096)
        with track(gpu):
            assert gpu.memory.live_bytes == 0

    def test_strict_flag_scoped_to_block(self, gpu):
        with track(gpu, strict=True):
            assert gpu.memory.strict
        assert not gpu.memory.strict

    def test_zero_size_buffers_ignored(self, gpu):
        with track(gpu) as tracker:
            tracker.register(np.empty(0, dtype=np.float32), label="empty")
            assert gpu.memory.alloc_count == 0

    def test_report_digest_excludes_itself(self, gpu):
        from repro.gpu.memory import digest_report

        with track(gpu) as tracker:
            tracker.register(np.ones(256, dtype=np.float32), label="x")
            report = tracker.report()
        assert report["memory_digest"] == digest_report(report)
        assert report["top_labels"][0][0] == "x"

    def test_counter_sink_sees_allocs_and_frees(self, gpu):
        samples = []
        with track(gpu) as tracker:
            tracker.set_counter_sink(
                lambda clock, live, reserved: samples.append((live, reserved)))
            buf = np.ones(4096, dtype=np.float32)
            tracker.register(buf, label="x")
            del buf
        block = round_block(4096 * 4)  # fp32 elements
        assert samples == [(0, 0), (block, block), (0, block)]


class TestTensorLifecycle:
    def test_training_allocations_attributed_by_phase(self, gpu):
        """One tiny real training step: every phase shows up in the
        watermarks and optimizer state is labelled."""
        from repro.core import characterize

        report = characterize.measure_memory("KGNNL", scale="test", epochs=1)
        assert set(report["phase_watermarks"]) >= {"setup", "forward",
                                                   "backward", "optimizer"}
        labels = {name for name, _, _ in report["top_labels"]}
        assert "activation" in labels
        assert "saved_activation" in labels
        assert report["peak_live_bytes"] <= report["peak_reserved_bytes"]
        assert report["epoch_watermarks"] == [report["peak_live_bytes"]]
