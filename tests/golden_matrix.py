"""Shared determinism matrix for golden report families.

Every golden family (memory, serve, sample, shard) makes the same
promise: a report is a pure function of its parameters, so the exact
bytes must survive every way the run can be executed.  The matrix pins
the four axes:

* repeat runs in one process are byte-identical,
* the executor produces the same bytes serial (``jobs=1``) and on pool
  workers (``jobs=2``),
* a profile-cache warm replay matches the cold run that populated it,
* launch-analysis memoization on/off leaves the report untouched.

Subclass :class:`GoldenMatrix` in a ``TestDeterminism`` class and
implement the three ``run_*`` hooks with the family's own entry points;
the ``test_*`` methods are inherited.
"""

import json

from repro.core.cache import ProfileCache
from repro.gpu import analysis_cache


def canonical(report) -> str:
    """The byte string the matrix compares: sorted-key JSON."""
    return json.dumps(report, sort_keys=True)


class GoldenMatrix:
    """Mixin asserting a report family is execution-strategy invariant."""

    #: suite keys exercised by the jobs / profile-cache axes
    keys = ()

    def run_single(self):
        """One report, fixed parameters (repeat-run axis)."""
        raise NotImplementedError

    def run_suite(self, *, jobs=None, cache=None):
        """Executor suite ``{key: report}`` honouring ``jobs``/``cache``."""
        raise NotImplementedError

    def run_analysis(self):
        """One report for the analysis-cache axis (defaults to single)."""
        return self.run_single()

    def test_repeat_runs_byte_identical(self):
        assert canonical(self.run_single()) == canonical(self.run_single())

    def test_jobs_do_not_change_reports(self):
        serial = self.run_suite(jobs=1, cache=False)
        forked = self.run_suite(jobs=2, cache=False)
        for key in self.keys:
            assert canonical(serial[key]) == canonical(forked[key]), key

    def test_profile_cache_replays_identically(self, tmp_path):
        cache = ProfileCache(tmp_path)
        cold = self.run_suite(cache=cache)
        warm = self.run_suite(cache=cache)
        assert cache.hits >= len(self.keys)  # warm pass replayed from disk
        for key in self.keys:
            assert canonical(cold[key]) == canonical(warm[key]), key

    def test_analysis_cache_does_not_change_report(self):
        with analysis_cache.override(True):
            cached = self.run_analysis()
        with analysis_cache.override(False):
            uncached = self.run_analysis()
        # launch-analysis memoization is a speed knob, not a semantics knob:
        # everything except the hit/miss ratio must be byte-identical
        assert canonical(cached) == canonical(uncached)
