"""Autograd engine: tape mechanics, gradient checks, phases."""

import numpy as np
import pytest

from repro.gpu import SimulatedGPU
from repro.tensor import Tensor, functional as F, no_grad, phase
from repro.tensor.autograd import current_phase, is_grad_enabled, topo_order


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar-valued fn at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_grad(build, shape, seed=0, atol=2e-2, rtol=2e-2):
    """Compare autograd gradient with numeric gradient for `build(tensor)`."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape).astype(np.float32) + 0.5
    t = Tensor(data.copy(), requires_grad=True)
    out = build(t)
    loss = out.sum() if out.size > 1 else out
    loss.backward()
    num = numeric_grad(lambda arr: float(build(Tensor(arr)).sum().data), data)
    np.testing.assert_allclose(t.grad.data, num, atol=atol, rtol=rtol)


class TestTape:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_no_grad_suppresses_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = t * 2
        assert out._ctx is None
        assert not out.requires_grad

    def test_grad_flag_propagates(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3))
        assert (a + b).requires_grad
        assert not (b + b).requires_grad

    def test_topo_order_ends_at_root(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = (a * 2 + 1).sum()
        order = topo_order(out)
        assert order[0] is out

    def test_grad_accumulates_across_uses(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = (a * 2 + a * 3).sum()
        out.backward()
        np.testing.assert_allclose(a.grad.data, 5.0)

    def test_second_backward_accumulates_into_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad.data, 4.0)

    def test_diamond_graph(self):
        a = Tensor(np.full(3, 2.0), requires_grad=True)
        b = a * a            # 4
        out = (b + b).sum()  # d/da = 2 * 2a = 8
        out.backward()
        np.testing.assert_allclose(a.grad.data, 8.0)


class TestPhases:
    def test_default_phase_forward(self):
        assert current_phase() == "forward"

    def test_phase_context(self):
        with phase("optimizer"):
            assert current_phase() == "optimizer"
        assert current_phase() == "forward"

    def test_backward_kernels_tagged(self):
        gpu = SimulatedGPU()
        phases = []
        gpu.add_launch_listener(lambda l: phases.append(l.descriptor.phase))
        t = Tensor(np.ones(8, dtype=np.float32), device=gpu, requires_grad=True)
        (t * 2).sum().backward()
        assert "forward" in phases
        assert "backward" in phases


class TestGradChecks:
    """Numeric gradient checks for every differentiable op family."""

    def test_add(self):
        check_grad(lambda t: t + t * 0.5, (3, 4))

    def test_sub_div(self):
        check_grad(lambda t: (t - 2.0) / 3.0, (2, 5))

    def test_mul_broadcast(self):
        w = Tensor(np.array([[2.0, 3.0, 4.0]], dtype=np.float32))
        check_grad(lambda t: t * w, (4, 3))

    def test_pow(self):
        check_grad(lambda t: t ** 2.0, (3, 3))

    def test_exp_log(self):
        check_grad(lambda t: F.log(F.exp(t) + 1.0), (4,))

    def test_sqrt(self):
        check_grad(lambda t: F.sqrt(t * t + 1.0), (5,))

    def test_tanh_sigmoid(self):
        check_grad(lambda t: F.tanh(t) + F.sigmoid(t), (6,))

    def test_relu_leaky(self):
        check_grad(lambda t: F.relu(t) + F.leaky_relu(t, 0.1), (10,), seed=3)

    def test_clamp(self):
        check_grad(lambda t: F.clamp(t, -0.5, 0.8), (10,), seed=2)

    def test_abs(self):
        check_grad(lambda t: F.abs(t + 0.1), (7,), seed=5)

    def test_maximum(self):
        other = Tensor(np.zeros(6, dtype=np.float32))
        check_grad(lambda t: F.maximum(t, other), (6,), seed=9)

    def test_where(self):
        cond = np.array([True, False, True, False])
        zero = Tensor(np.zeros(4, dtype=np.float32))
        check_grad(lambda t: F.where(cond, t * 2, zero), (4,))

    def test_matmul(self):
        w = Tensor(np.random.default_rng(1).normal(size=(4, 3)).astype(np.float32))
        check_grad(lambda t: F.matmul(t, w), (2, 4))

    def test_batched_matmul(self):
        w = Tensor(np.random.default_rng(1).normal(size=(2, 4, 3)).astype(np.float32))
        check_grad(lambda t: F.matmul(t, w), (2, 5, 4))

    def test_linear(self):
        w = Tensor(np.random.default_rng(2).normal(size=(3, 4)).astype(np.float32))
        b = Tensor(np.zeros(3, dtype=np.float32))
        check_grad(lambda t: F.linear(t, w, b), (5, 4))

    def test_sum_axis(self):
        check_grad(lambda t: t.sum(axis=1), (3, 4))

    def test_mean_keepdims(self):
        check_grad(lambda t: t.mean(axis=0, keepdims=True), (4, 2))

    def test_max_reduction(self):
        check_grad(lambda t: t.max(axis=1), (3, 5), seed=11)

    def test_softmax(self):
        check_grad(lambda t: F.softmax(t, axis=-1) * Tensor(
            np.arange(4, dtype=np.float32)), (3, 4))

    def test_log_softmax(self):
        check_grad(lambda t: F.log_softmax(t, axis=-1) * Tensor(
            np.arange(4, dtype=np.float32)), (2, 4))

    def test_index_select(self):
        idx = np.array([0, 2, 2, 1])
        check_grad(lambda t: F.index_select(t, idx), (3, 4))

    def test_scatter_add(self):
        idx = np.array([0, 1, 0, 2, 1])
        check_grad(lambda t: F.scatter_add(t, idx, 3), (5, 2))

    def test_segment_mean(self):
        idx = np.array([0, 0, 1, 1, 1])
        check_grad(lambda t: F.segment_mean(t, idx, 2), (5, 3))

    def test_segment_max(self):
        # well-separated values so the numeric gradient has no near-ties
        data = np.arange(12, dtype=np.float32).reshape(4, 3)[::-1].copy()
        idx = np.array([0, 1, 0, 1])
        t = Tensor(data.copy(), requires_grad=True)
        F.segment_max(t, idx, 2).sum().backward()
        expected = np.zeros((4, 3), dtype=np.float32)
        expected[0] = 1.0  # rows 0 and 1 hold the maxima of their segments
        expected[1] = 1.0
        np.testing.assert_allclose(t.grad.data, expected)

    def test_embedding(self):
        idx = np.array([1, 0, 1, 2])
        check_grad(lambda t: F.embedding(t, idx), (3, 4))

    def test_reshape_permute(self):
        check_grad(lambda t: t.reshape(6, 2).transpose(), (3, 4))

    def test_cat_stack(self):
        other = Tensor(np.ones((2, 3), dtype=np.float32))
        check_grad(lambda t: F.cat([t, other], axis=0), (2, 3))

    def test_slice(self):
        check_grad(lambda t: t[1:3, :2], (4, 4))

    def test_batch_norm(self):
        g = Tensor(np.ones(3, dtype=np.float32))
        b = Tensor(np.zeros(3, dtype=np.float32))
        check_grad(lambda t: F.batch_norm(t, g, b, channel_axis=1), (8, 3),
                   atol=5e-2, rtol=5e-2)

    def test_layer_norm(self):
        g = Tensor(np.ones(4, dtype=np.float32))
        b = Tensor(np.zeros(4, dtype=np.float32))
        check_grad(lambda t: F.layer_norm(t, g, b), (5, 4), atol=5e-2, rtol=5e-2)

    def test_cross_entropy(self):
        target = np.array([0, 2, 1])
        check_grad(lambda t: F.cross_entropy(t, target), (3, 4))

    def test_bce_with_logits(self):
        target = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32)
        check_grad(lambda t: F.binary_cross_entropy_with_logits(t, target),
                   (2, 2))

    def test_mse(self):
        target = np.zeros((3, 2), dtype=np.float32)
        check_grad(lambda t: F.mse_loss(t, target), (3, 2))

    def test_conv2d(self):
        w = Tensor(np.random.default_rng(4).normal(size=(2, 3, 2, 2)).astype(np.float32) * 0.3)
        check_grad(lambda t: F.conv2d(t, w, stride=1, padding=1), (1, 3, 4, 4),
                   atol=5e-2, rtol=5e-2)

    def test_spmm(self):
        import scipy.sparse as sp

        from repro.tensor import SparseTensor

        adj = SparseTensor(sp.random(4, 4, 0.6, random_state=0, format="csr"))
        check_grad(lambda t: F.spmm(adj, t), (4, 3))
