"""Every workload's *fused* replay plan against its golden snapshot.

Fused plans intentionally diverge from the dispatch stream (adjacent
elementwise launches merge), so they carry their own snapshot family:
``tests/golden/fused_<KEY>.json`` pins the fused event-stream digest, the
fusion census and the work-conservation totals.  A failure means the fusion
pass changed what it merges or how it costs the result; if intentional,
regenerate with ``PYTHONPATH=src python -m repro golden --fused --update``.
"""

from __future__ import annotations

import json

import pytest

from repro.core.registry import WORKLOAD_KEYS
from repro.testing import (
    compare_fused_fingerprints,
    fused_fingerprint,
    fused_golden_path,
    load_fused_golden,
    save_fused_golden,
)


@pytest.mark.parametrize("key", WORKLOAD_KEYS)
def test_fused_plan_matches_golden(key):
    observed = fused_fingerprint(key)
    diffs = compare_fused_fingerprints(load_fused_golden(key), observed)
    assert not diffs, (
        f"{key} fused plan diverged from tests/golden/fused_{key}.json:\n  "
        + "\n  ".join(diffs)
        + "\nIf intentional: PYTHONPATH=src python -m repro golden"
        " --fused --update"
    )


def test_fused_snapshots_exist_for_whole_registry():
    missing = [k for k in WORKLOAD_KEYS if not fused_golden_path(k).exists()]
    assert not missing, f"no fused golden snapshot for {missing}"


def test_fused_snapshot_files_round_trip():
    for key in WORKLOAD_KEYS:
        path = fused_golden_path(key)
        original = path.read_text()
        fingerprint = load_fused_golden(key)
        assert save_fused_golden(fingerprint).read_text() == original
        assert json.dumps(fingerprint, indent=2, sort_keys=True) + "\n" \
            == original


def test_every_workload_actually_fuses():
    # the suite-wide claim in DESIGN.md §9: each workload's steady epoch
    # contains at least one fusible elementwise run
    for key in WORKLOAD_KEYS:
        snap = load_fused_golden(key)
        assert snap["fused_kernels"] >= 1, key
        assert snap["fused_members"] >= 2 * snap["fused_kernels"], key
        assert snap["fused_launch_count"] < snap["launch_count"], key
