"""GNN layers shared by the workload models."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gpu import OpClass, SimulatedGPU
from repro.graph import Graph
from repro.graph.sampling import SampledBlock
from repro.models import (
    ChebGraphConv,
    GCNConv,
    GENConv,
    GINConv,
    InnerProductDecoder,
    MLPReadout,
    SAGEConv,
    gather_scatter,
)
from repro.tensor import SparseTensor, Tensor


def _features(n, d, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=(n, d)).astype(np.float32))


def _adj(n=8, seed=0):
    g = Graph.from_scipy(sp.random(n, n, 0.4, random_state=seed, format="csr"))
    return g.adjacency("sym", add_self_loops=True)


class TestGatherScatter:
    def test_sum_matches_manual(self):
        x = Tensor(np.arange(8, dtype=np.float32).reshape(4, 2))
        out = gather_scatter(x, np.array([0, 1, 2]), np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data[0], x.data[0] + x.data[1])
        np.testing.assert_allclose(out.data[1], x.data[2])

    def test_mean_reduce(self):
        x = Tensor(np.array([[2.0], [4.0]], dtype=np.float32))
        out = gather_scatter(x, np.array([0, 1]), np.array([0, 0]), 1,
                             reduce="mean")
        assert out.data[0, 0] == pytest.approx(3.0)

    def test_max_reduce(self):
        x = Tensor(np.array([[2.0], [4.0]], dtype=np.float32))
        out = gather_scatter(x, np.array([0, 1]), np.array([0, 0]), 1,
                             reduce="max")
        assert out.data[0, 0] == pytest.approx(4.0)

    def test_edge_weights_applied(self):
        x = Tensor(np.ones((2, 1), dtype=np.float32))
        out = gather_scatter(x, np.array([0, 1]), np.array([0, 0]), 1,
                             edge_weight=np.array([0.25, 0.5], dtype=np.float32))
        assert out.data[0, 0] == pytest.approx(0.75)

    def test_unknown_reduce_raises(self):
        with pytest.raises(ValueError):
            gather_scatter(_features(3, 2), np.array([0]), np.array([0]), 1,
                           reduce="median")


class TestConvLayers:
    def test_gcn_shapes(self):
        out = GCNConv(4, 6)(_adj(), _features(8, 4))
        assert out.shape == (8, 6)

    def test_gcn_dynamic_norm_emits_norm_kernels(self):
        gpu = SimulatedGPU()
        names = []
        gpu.add_launch_listener(lambda l: names.append(l.name))
        conv = GCNConv(4, 6, dynamic_norm=True)
        conv.to(gpu)
        x = _features(8, 4).to(gpu)
        names.clear()
        conv(_adj(), x)
        assert "gcn_norm_degree_scatter" in names
        assert "ew_edge_norm_mul" in names

    def test_cheb_k1_is_plain_linear(self):
        conv = ChebGraphConv(4, 6, k=1)
        x = _features(8, 4)
        out = conv(_adj(), x)
        expected = x.data @ conv.linears[0].weight.data.T + conv.linears[0].bias.data
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_cheb_k3_shapes_with_3d_input(self):
        conv = ChebGraphConv(4, 6, k=3)
        x = Tensor(np.random.default_rng(1).normal(size=(8, 5, 4)).astype(np.float32))
        assert conv(_adj(), x).shape == (8, 5, 6)

    def test_gin_shapes_and_grad(self):
        conv = GINConv(4, 8)
        x = _features(6, 4)
        x.requires_grad = True
        out = conv(x, np.array([0, 1, 2]), np.array([1, 2, 0]))
        out.sum().backward()
        assert out.shape == (6, 8)
        assert x.grad is not None

    def test_genconv_softmax_aggregation_weights(self):
        """GENConv softmax weights per destination sum to ~1 internally."""
        conv = GENConv(4)
        x = _features(5, 4, seed=2)
        out = conv(x, np.array([0, 1, 2, 3]), np.array([4, 4, 4, 4]))
        assert out.shape == (5, 4)
        assert np.isfinite(out.data).all()

    def test_sage_conv_normalizes_output(self):
        block = SampledBlock(
            src_nodes=np.arange(5),
            dst_nodes=np.arange(2),
            edge_src=np.array([2, 3, 4]),
            edge_dst=np.array([0, 0, 1]),
        )
        out = SAGEConv(4, 8)(block, _features(5, 4))
        norms = np.linalg.norm(out.data, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-3)

    def test_sage_conv_uses_importance_weights(self):
        block = SampledBlock(
            src_nodes=np.arange(3),
            dst_nodes=np.arange(1),
            edge_src=np.array([1, 2]),
            edge_dst=np.array([0, 0]),
            edge_weight=np.array([1.0, 0.0], dtype=np.float32),
        )
        conv = SAGEConv(4, 8)
        x = _features(3, 4, seed=5)
        out_weighted = conv(block, x)
        # zero-weight neighbor contributes nothing: same as dropping it
        block2 = SampledBlock(
            src_nodes=np.arange(3),
            dst_nodes=np.arange(1),
            edge_src=np.array([1]),
            edge_dst=np.array([0]),
            edge_weight=np.array([1.0], dtype=np.float32),
        )
        np.testing.assert_allclose(out_weighted.data, conv(block2, x).data,
                                   rtol=1e-4)


class TestHeads:
    def test_inner_product_decoder_symmetric(self):
        z = _features(6, 3)
        logits = InnerProductDecoder()(z)
        np.testing.assert_allclose(logits.data, logits.data.T, rtol=1e-4)

    def test_mlp_readout_pools_by_graph(self):
        head = MLPReadout(4, 3)
        x = _features(6, 4)
        out = head(x, np.array([0, 0, 0, 1, 1, 1]), 2)
        assert out.shape == (2, 3)
