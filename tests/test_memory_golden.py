"""Golden memory snapshots: committed, complete, and bit-deterministic.

The memory report is shape-derived (allocation sizes) plus refcount-driven
(free points, cyclic GC suspended), so the same ``(key, scale, epochs,
seed)`` must serialize byte-identically no matter how the run is executed:
serial, on pool workers, or with the profile cache on or off.
"""

import pytest

from repro.core import characterize, executor, registry
from repro.testing import golden
from tests.golden_matrix import GoldenMatrix, canonical

# two cheap workloads exercise the determinism matrix; CI verifies all nine
KEYS = ["DGCN", "KGNNL"]


class TestCommittedSnapshots:
    @pytest.mark.parametrize("key", sorted(registry.WORKLOAD_KEYS))
    def test_snapshot_committed_for_every_workload(self, key):
        report = golden.load_memory_golden(key)
        assert report["workload"] == key
        assert report["version"] == 1
        assert report["peak_live_bytes"] > 0
        assert report["memory_digest"]

    def test_fresh_reports_match_goldens(self):
        diffs = golden.verify_memory_goldens(KEYS)
        assert diffs == {key: [] for key in KEYS}

    def test_compare_reports_digest_drift(self):
        expected = golden.load_memory_golden("DGCN")
        mutated = dict(expected)
        mutated["peak_live_bytes"] = expected["peak_live_bytes"] + 512
        diffs = golden.compare_memory_fingerprints(expected, mutated)
        assert any(d.startswith("peak_live_bytes") for d in diffs)
        # the digest line fires too: the canonical payload changed
        mutated["memory_digest"] = "deadbeef"
        diffs = golden.compare_memory_fingerprints(expected, mutated)
        assert any(d.startswith("memory_digest") for d in diffs)


class TestDeterminism(GoldenMatrix):
    keys = KEYS

    def run_single(self):
        return characterize.measure_memory("DGCN", scale="test", epochs=1)

    def run_suite(self, *, jobs=None, cache=None):
        return executor.memstats_suite(KEYS, scale="test", epochs=1,
                                       jobs=jobs, cache=cache)

    def test_uncached_run_matches_cache_population(self, tmp_path):
        from repro.core.cache import ProfileCache

        uncached = self.run_suite(cache=False)
        cold = self.run_suite(cache=ProfileCache(tmp_path))
        for key in KEYS:
            assert canonical(uncached[key]) == canonical(cold[key])
