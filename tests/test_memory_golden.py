"""Golden memory snapshots: committed, complete, and bit-deterministic.

The memory report is shape-derived (allocation sizes) plus refcount-driven
(free points, cyclic GC suspended), so the same ``(key, scale, epochs,
seed)`` must serialize byte-identically no matter how the run is executed:
serial, on pool workers, or with the profile cache on or off.
"""

import json

import pytest

from repro.core import characterize, executor, registry
from repro.testing import golden

# two cheap workloads exercise the determinism matrix; CI verifies all nine
KEYS = ["DGCN", "KGNNL"]


def _canonical(report: dict) -> str:
    return json.dumps(report, sort_keys=True)


class TestCommittedSnapshots:
    @pytest.mark.parametrize("key", sorted(registry.WORKLOAD_KEYS))
    def test_snapshot_committed_for_every_workload(self, key):
        report = golden.load_memory_golden(key)
        assert report["workload"] == key
        assert report["version"] == 1
        assert report["peak_live_bytes"] > 0
        assert report["memory_digest"]

    def test_fresh_reports_match_goldens(self):
        diffs = golden.verify_memory_goldens(KEYS)
        assert diffs == {key: [] for key in KEYS}

    def test_compare_reports_digest_drift(self):
        expected = golden.load_memory_golden("DGCN")
        mutated = dict(expected)
        mutated["peak_live_bytes"] = expected["peak_live_bytes"] + 512
        diffs = golden.compare_memory_fingerprints(expected, mutated)
        assert any(d.startswith("peak_live_bytes") for d in diffs)
        # the digest line fires too: the canonical payload changed
        mutated["memory_digest"] = "deadbeef"
        diffs = golden.compare_memory_fingerprints(expected, mutated)
        assert any(d.startswith("memory_digest") for d in diffs)


class TestDeterminism:
    def test_repeat_runs_are_byte_identical(self):
        first = characterize.measure_memory("DGCN", scale="test", epochs=1)
        second = characterize.measure_memory("DGCN", scale="test", epochs=1)
        assert _canonical(first) == _canonical(second)

    def test_jobs_do_not_change_reports(self):
        serial = executor.memstats_suite(KEYS, scale="test", epochs=1,
                                         jobs=1, cache=False)
        parallel = executor.memstats_suite(KEYS, scale="test", epochs=1,
                                           jobs=2, cache=False)
        for key in KEYS:
            assert _canonical(serial[key]) == _canonical(parallel[key])

    def test_profile_cache_does_not_change_reports(self, tmp_path):
        from repro.core.cache import ProfileCache

        cache = ProfileCache(tmp_path)
        uncached = executor.memstats_suite(KEYS, scale="test", epochs=1,
                                           cache=False)
        cold = executor.memstats_suite(KEYS, scale="test", epochs=1,
                                       cache=cache)
        warm = executor.memstats_suite(KEYS, scale="test", epochs=1,
                                       cache=cache)
        assert cache.hits >= len(KEYS)  # the warm pass replayed from disk
        for key in KEYS:
            assert _canonical(uncached[key]) == _canonical(cold[key])
            assert _canonical(cold[key]) == _canonical(warm[key])
