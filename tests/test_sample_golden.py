"""Golden snapshot + determinism matrix for sampled-training reports.

Mirrors ``tests/test_serve_golden.py``: the committed
``tests/golden/sample_*.json`` snapshots pin every field of the mini-batch
loader report (batch/edge counts, sampler cost, loader-stall accounting,
HBM peaks, digest), and the determinism matrix shows the report is a pure
function of its parameters — byte-identical across repeat runs, worker
counts, profile-cache warm/cold, and analysis-cache on/off.
"""

import json

import pytest

from repro.core import executor
from repro.testing import golden
from repro.train.loader import digest_sample_report, sample_report
from tests.golden_matrix import GoldenMatrix

KEYS = list(golden.SAMPLE_GOLDEN_KEYS)

#: fast determinism-matrix knobs (one small epoch)
FAST = dict(fanouts=(4, 3), batch_size=32, epochs=1)


class TestCommittedSnapshots:
    @pytest.mark.parametrize("key", KEYS)
    def test_snapshot_exists_and_is_wellformed(self, key):
        report = golden.load_sample_golden(key)
        assert report["workload"] == key
        assert report["sample_digest"] == digest_sample_report(report)
        assert report["batches"] == (report["batches_per_epoch"]
                                     * report["epochs"])
        assert report["queue_occupancy_max"] <= report["prefetch_depth"]
        assert report["oom_events"] == 0
        breakdown = report["stall_breakdown"]
        assert "loader_stall" in breakdown
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_fresh_runs_match_goldens(self):
        diffs = golden.verify_sample_goldens(KEYS)
        assert diffs == {key: [] for key in KEYS}

    def test_digest_drift_is_reported_last(self):
        expected = golden.load_sample_golden("ARGA")
        mutated = json.loads(json.dumps(expected))
        mutated["batches"] += 1
        mutated["sample_digest"] = digest_sample_report(mutated)
        diff = golden.compare_sample_reports(expected, mutated)
        assert any("batches" in line for line in diff)
        assert "sample_digest" in diff[-1]


class TestDeterminism(GoldenMatrix):
    keys = KEYS

    def run_single(self):
        return sample_report("ARGA", scale="test", **FAST)

    def run_suite(self, *, jobs=None, cache=None):
        return executor.sample_suite(KEYS, jobs=jobs, cache=cache, **FAST)

    def run_analysis(self):
        return sample_report("PSAGE-MVL", scale="test", **FAST)


class TestBenchmarkGate:
    def test_committed_baseline_still_passes(self):
        with open("benchmarks/sample_baseline.json") as fh:
            baseline = json.load(fh)
        report = executor.benchmark_sample(
            keys=baseline["suite"], scale=baseline["scale"],
            fanouts=tuple(baseline["fanouts"]),
            batch_size=baseline["batch_size"],
            prefetch_depth=baseline["prefetch_depth"],
            epochs=baseline["epochs"], seed=baseline["seed"])
        assert executor.check_sample_regression(report, baseline) == []
        # simulated-clock arithmetic: the measurement is exactly reproducible
        assert report["speedup"] == pytest.approx(baseline["speedup"])

    def test_gate_catches_lost_overlap(self):
        with open("benchmarks/sample_baseline.json") as fh:
            baseline = json.load(fh)
        broken = json.loads(json.dumps(baseline))
        for w in broken["workloads"].values():
            w["prefetch_epochs_per_s"] = w["sync_epochs_per_s"] * 0.9
            w["prefetch_stall_s"] = w["sync_stall_s"] * 2
        broken["speedup"] = 0.9
        failures = executor.check_sample_regression(broken, baseline)
        assert failures
        assert any("does not beat synchronous" in f for f in failures)
        assert any("did not shrink" in f for f in failures)
        assert any("fell below" in f for f in failures)
