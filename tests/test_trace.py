"""Kernel-timeline tracing: Timeline invariants, Chrome export, guards.

Two layers of evidence:

* real-workload traces must satisfy the structural invariants the rest of
  the repo relies on (serialized streams, phase/epoch nesting, busy time
  equal to the device's own accounting);
* hypothesis-driven synthetic span sets pin the Timeline algebra
  (canonical ordering, interval union/intersection, lossless Chrome
  round-trips) far outside the shapes real workloads produce.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import registry
from repro.gpu import SimulatedGPU
from repro.profiling import trace
from repro.tensor import manual_seed
from repro.train import Trainer

EPS_US = 1e-6


def _traced_run(key: str = "GW", epochs: int = 1):
    """Trace a workload and keep the device for stats cross-checks."""
    spec = registry.get(key)
    manual_seed(0)
    device = SimulatedGPU()
    workload = spec.build(device=device, scale="test")
    device.reset()
    with trace.session(devices=(device,)) as tracer:
        Trainer(workload=workload, device=device).run(epochs=epochs, seed=0)
    return tracer.timeline(), device


@pytest.fixture(scope="module")
def traced():
    return _traced_run()


class TestGuards:
    def test_no_tracer_by_default(self):
        assert trace.active() is None

    def test_install_uninstall(self):
        tracer = trace.install(trace.Tracer())
        assert trace.active() is tracer
        trace.uninstall()
        assert trace.active() is None

    def test_double_install_rejected(self):
        trace.install(trace.Tracer())
        try:
            with pytest.raises(RuntimeError):
                trace.install(trace.Tracer())
        finally:
            trace.uninstall()

    def test_session_uninstalls_on_error(self, gpu):
        with pytest.raises(ValueError):
            with trace.session(devices=(gpu,)):
                raise ValueError("boom")
        assert trace.active() is None
        assert not gpu._launch_listeners

    def test_untraced_run_records_nothing(self, gpu):
        """The zero-cost guard: no tracer → no listeners on the device."""
        spec = registry.get("GW")
        workload = spec.build(device=gpu, scale="test")
        assert not gpu._launch_listeners and not gpu._transfer_listeners
        Trainer(workload=workload, device=gpu).run(epochs=1, seed=0)
        assert not gpu._launch_listeners and not gpu._transfer_listeners


class TestStreamInvariants:
    def test_streams_are_serialized(self, traced):
        """Within one (pid, tid) stream spans never overlap."""
        timeline, _ = traced
        streams = {(s.pid, s.tid) for s in timeline.spans}
        for pid, tid in streams:
            spans = timeline.query(pid=pid, tid=tid)
            for a, b in zip(spans, spans[1:]):
                assert b.ts_us >= a.end_us - EPS_US, (tid, a, b)

    def test_kernels_nest_in_phases(self, traced):
        timeline, _ = traced
        phases = timeline.query(cat=trace.CAT_PHASE)
        for span in timeline.query(cat=trace.CAT_KERNEL):
            assert any(
                p.pid == span.pid
                and p.name == span.arg("phase")
                and p.ts_us - EPS_US <= span.ts_us
                and span.end_us <= p.end_us + EPS_US
                for p in phases
            ), span

    def test_transfers_nest_in_transfer_phases(self, traced):
        timeline, _ = traced
        phases = timeline.query(cat=trace.CAT_PHASE, name="transfer")
        for span in timeline.query(cat=trace.CAT_TRANSFER):
            assert any(
                p.pid == span.pid
                and p.ts_us - EPS_US <= span.ts_us
                and span.end_us <= p.end_us + EPS_US
                for p in phases
            ), span

    def test_phases_nest_in_epochs(self, traced):
        timeline, _ = traced
        epochs = timeline.query(cat=trace.CAT_EPOCH)
        assert epochs
        for span in timeline.query(cat=trace.CAT_PHASE):
            assert any(
                e.pid == span.pid
                and e.ts_us - EPS_US <= span.ts_us
                and span.end_us <= e.end_us + EPS_US
                for e in epochs
            ), span

    def test_kernel_time_matches_device_stats(self, traced):
        """The trace is the device's own accounting, span by span."""
        timeline, device = traced
        kernel_us = sum(s.dur_us for s in timeline.query(cat=trace.CAT_KERNEL))
        assert kernel_us / 1e6 == pytest.approx(device.stats.kernel_time_s,
                                                rel=1e-9)
        transfer_us = sum(
            s.dur_us for s in timeline.query(cat=trace.CAT_TRANSFER)
        )
        assert transfer_us / 1e6 == pytest.approx(
            device.stats.transfer_time_s, rel=1e-9
        )
        assert len(timeline.query(cat=trace.CAT_KERNEL)) == \
            device.stats.kernel_count

    def test_busy_never_exceeds_wall(self, traced):
        timeline, _ = traced
        for pid in timeline.device_ids():
            assert 0.0 < timeline.busy_us(pid) <= timeline.wall_us() + EPS_US
            assert 0.0 <= timeline.idle_fraction(pid) < 1.0

    def test_d2h_spans_carry_no_sparsity(self, traced, gpu):
        """D2H payloads are compute results; their zero counts must never
        enter the byte-deterministic trace (the golden-stream rule)."""
        import numpy as np

        timeline, _ = traced
        h2d = timeline.query(tid="h2d")
        assert h2d
        assert all(s.arg("sparsity") is not None for s in h2d)
        # training never reads back to host, so drive d2h directly
        with trace.session(devices=(gpu,)) as tracer:
            gpu.h2d(np.zeros(64, dtype=np.float32), "in")
            gpu.d2h(np.zeros(64, dtype=np.float32), "out")
        d2h = tracer.timeline().query(tid="d2h")
        assert len(d2h) == 1
        assert d2h[0].arg("sparsity") is None
        assert d2h[0].arg("nbytes") == 256

    def test_phase_occupancy_sums_below_one(self, traced):
        timeline, _ = traced
        occupancy = timeline.phase_occupancy()
        assert set(occupancy) >= {"forward", "backward", "optimizer"}
        assert 0.0 < sum(occupancy.values()) <= 1.0 + 1e-9

    def test_critical_path_covers_busy_time(self, traced):
        timeline, _ = traced
        pid = timeline.device_ids()[0]
        assert timeline.critical_path_s() == pytest.approx(
            timeline.busy_us(pid) / 1e6, rel=1e-9
        )

    def test_summary_shape(self, traced):
        timeline, _ = traced
        summary = timeline.summary()
        assert summary["span_count"] == len(timeline)
        assert summary["wall_s"] == pytest.approx(timeline.wall_s())
        assert set(summary["span_counts"]) == \
            {trace.CAT_KERNEL, trace.CAT_TRANSFER, trace.CAT_PHASE,
             trace.CAT_EPOCH}
        assert 0.0 <= summary["compute_transfer_overlap"] <= 1.0


class TestChromeExport:
    def test_round_trip_is_lossless(self, traced):
        timeline, _ = traced
        back = trace.Timeline.from_chrome(json.loads(timeline.to_json()))
        assert back == timeline
        assert back.digest() == timeline.digest()

    def test_validate_accepts_own_output(self, traced):
        timeline, _ = traced
        trace.validate_chrome(timeline.to_chrome())

    def test_validate_rejects_missing_field(self):
        bad = {"traceEvents": [{"ph": "X", "name": "k", "cat": "kernel",
                                "pid": 0, "tid": "kernels", "ts": 0.0}]}
        with pytest.raises(ValueError, match="dur"):
            trace.validate_chrome(bad)

    def test_validate_rejects_non_monotone_stream(self):
        event = {"ph": "X", "name": "k", "cat": "kernel", "pid": 0,
                 "tid": "kernels", "dur": 1.0, "args": {}}
        bad = {"traceEvents": [dict(event, ts=5.0), dict(event, ts=1.0)]}
        with pytest.raises(ValueError, match="monotone"):
            trace.validate_chrome(bad)

    def test_validate_rejects_non_object(self):
        with pytest.raises(ValueError):
            trace.validate_chrome([])

    def test_metadata_names_every_stream(self, traced):
        timeline, _ = traced
        chrome = timeline.to_chrome()
        named = {(e["pid"], e["args"]["name"])
                 for e in chrome["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        streams = {(s.pid, s.tid) for s in timeline.spans}
        assert named == streams


class TestMidRunAttach:
    """Attaching a profiler mid-run must see the launch-site fast path.

    After a warm-up epoch the launch-site memo is populated and launches go
    through ``SimulatedGPU.replay``; replay re-checks the listener list on
    every call, so a tracer attached *between* epochs still receives a full
    ``KernelLaunch`` envelope (correct timings included) for every replayed
    kernel — no stale "no listeners" state may survive the warm-up.
    """

    def _warmed_trainer(self):
        spec = registry.get("TLSTM")
        manual_seed(0)
        device = SimulatedGPU()
        workload = spec.build(device=device, scale="test")
        device.reset()
        trainer = Trainer(workload=workload, device=device)
        trainer.run(epochs=1, seed=0)  # untraced warm-up: memo populated
        return trainer, device

    def test_attach_after_warmup_sees_replayed_launches(self):
        trainer, device = self._warmed_trainer()
        k0 = device.stats.kernel_count
        hits0 = device.stats.analysis_hits
        with trace.session(devices=(device,)) as tracer:
            trainer.run(epochs=1, seed=0)
        timeline = tracer.timeline()
        kernels = timeline.query(cat=trace.CAT_KERNEL)
        # every steady-state launch produced a span...
        assert len(kernels) == device.stats.kernel_count - k0
        # ...and the steady-state epoch replayed from the analysis memo
        assert device.stats.analysis_hits > hits0
        # replayed envelopes carry real timings on the advancing clock
        assert all(s.dur_us > 0 for s in kernels)
        ts = [s.ts_us for s in kernels]
        assert ts == sorted(ts)
        assert len(timeline.query(cat=trace.CAT_EPOCH)) == 1

    def test_traced_epoch_matches_untraced_clock(self):
        """Observation must not perturb the simulation: a traced steady-state
        epoch lands on exactly the clock an untraced one reaches."""
        trainer_a, device_a = self._warmed_trainer()
        trainer_a.run(epochs=1, seed=0)

        trainer_b, device_b = self._warmed_trainer()
        with trace.session(devices=(device_b,)):
            trainer_b.run(epochs=1, seed=0)
        assert device_b.elapsed_s() == device_a.elapsed_s()
        assert device_b.stats.kernel_count == device_a.stats.kernel_count

    def test_detach_mid_run_stops_collection(self):
        trainer, device = self._warmed_trainer()
        tracer = trace.install(trace.Tracer().attach(device))
        trainer.run(epochs=1, seed=0)
        trace.uninstall()
        tracer.detach()
        seen = len(tracer.spans)
        assert seen > 0
        k0 = device.stats.kernel_count
        trainer.run(epochs=1, seed=0)
        # stats keep counting; the detached tracer sees nothing new
        assert device.stats.kernel_count > k0
        assert len(tracer.spans) == seen


# -- hypothesis: the Timeline algebra on synthetic spans ----------------------
_TIDS = ("epoch", "phase", "kernels", "h2d", "d2h", "allreduce")


@st.composite
def span_lists(draw):
    """Synthetic spans with unique (pid, tid, ts) keys.

    Uniqueness matters: Timeline order on exact ties is insertion order (a
    stable sort), so digest-invariance under shuffling only holds when no
    two spans share a stream position — as with real launches, which are
    strictly ordered by the simulated clock.
    """
    n = draw(st.integers(min_value=0, max_value=24))
    spans, used = [], set()
    for i in range(n):
        pid = draw(st.integers(min_value=0, max_value=3))
        tid = draw(st.sampled_from(_TIDS))
        ts = draw(st.integers(min_value=0, max_value=10_000))
        if (pid, tid, ts) in used:
            continue
        used.add((pid, tid, ts))
        dur = draw(st.integers(min_value=0, max_value=500))
        args = draw(st.dictionaries(
            st.sampled_from(("op", "phase", "nbytes", "label")),
            st.one_of(st.integers(min_value=0, max_value=1 << 30),
                      st.text(alphabet="abcxyz", max_size=6)),
            max_size=3,
        ))
        spans.append(trace.Span.make(f"s{i}", draw(st.sampled_from(
            (trace.CAT_KERNEL, trace.CAT_TRANSFER, trace.CAT_ALLREDUCE,
             trace.CAT_PHASE, trace.CAT_EPOCH))),
            pid, tid, ts * 1e-6, (ts + dur) * 1e-6, args))
    return spans


class TestTimelineAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(spans=span_lists(), seed=st.integers(min_value=0, max_value=999))
    def test_order_is_canonical_under_shuffle(self, spans, seed):
        import random

        shuffled = spans[:]
        random.Random(seed).shuffle(shuffled)
        assert trace.Timeline(shuffled).digest() == \
            trace.Timeline(spans).digest()

    @settings(max_examples=60, deadline=None)
    @given(spans=span_lists())
    def test_chrome_round_trip(self, spans):
        timeline = trace.Timeline(spans)
        back = trace.Timeline.from_chrome(json.loads(timeline.to_json()))
        assert back == timeline

    @settings(max_examples=60, deadline=None)
    @given(spans=span_lists())
    def test_own_chrome_output_validates(self, spans):
        trace.validate_chrome(trace.Timeline(spans).to_chrome())

    @settings(max_examples=60, deadline=None)
    @given(spans=span_lists())
    def test_busy_bounded_by_span_sum(self, spans):
        timeline = trace.Timeline(spans)
        for pid in timeline.device_ids():
            device_spans = [s for s in timeline.spans
                            if s.pid == pid and s.cat in trace.DEVICE_CATS]
            total = sum(s.dur_us for s in device_spans)
            busy = timeline.busy_us(pid)
            assert busy <= total + EPS_US
            if device_spans:
                assert busy >= max(s.dur_us for s in device_spans) - EPS_US

    @settings(max_examples=60, deadline=None)
    @given(spans=span_lists())
    def test_overlap_is_symmetric_and_bounded(self, spans):
        timeline = trace.Timeline(spans)
        ab = timeline.overlap_us(trace.CAT_KERNEL, trace.CAT_TRANSFER)
        ba = timeline.overlap_us(trace.CAT_TRANSFER, trace.CAT_KERNEL)
        assert ab == pytest.approx(ba, abs=EPS_US)
        for cat in (trace.CAT_KERNEL, trace.CAT_TRANSFER):
            total = sum(s.dur_us for s in timeline.spans if s.cat == cat)
            assert ab <= total + EPS_US

    @settings(max_examples=60, deadline=None)
    @given(spans=span_lists())
    def test_replication_preserves_source_and_excludes_collectives(
        self, spans
    ):
        timeline = trace.Timeline(spans)
        replicated = timeline.replicate_device(0, (7, 8))
        src = timeline.query(pid=0)
        clonable = [s for s in src if s.cat != trace.CAT_ALLREDUCE]
        for pid in (7, 8):
            clones = replicated.query(pid=pid)
            assert [
                (s.name, s.cat, s.tid, s.ts_us, s.dur_us, s.args)
                for s in clones
            ] == [
                (s.name, s.cat, s.tid, s.ts_us, s.dur_us, s.args)
                for s in clonable
            ]
        assert replicated.query(pid=0) == src
