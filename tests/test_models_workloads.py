"""End-to-end workload training at test scale: every model must train,
produce finite losses, and learn on its synthetic task."""

import numpy as np
import pytest

import repro.datasets as D
from repro.gpu import SimulatedGPU
from repro.models import (
    ARGAWorkload,
    DeepGCNWorkload,
    GraphWriterWorkload,
    KGNNWorkload,
    PinSAGEWorkload,
    STGCNWorkload,
    TreeLSTMWorkload,
)
from repro.models.treelstm import batch_trees, row_lookup


@pytest.fixture(scope="module")
def module_rng():
    return np.random.default_rng(0)


class TestARGA:
    def test_epoch_metrics_finite(self, rng):
        w = ARGAWorkload.build(D.load_citation("cora"), device=SimulatedGPU())
        metrics = w.train_epoch(rng)
        assert np.isfinite(metrics["loss"])
        assert np.isfinite(metrics["disc"])
        assert "cluster_spread" in metrics

    def test_loss_decreases_over_epochs(self, rng):
        w = ARGAWorkload.build(D.load_citation("cora"), device=SimulatedGPU(),
                               lr=5e-3)
        first = w.train_epoch(rng)["recon"]
        for _ in range(3):
            last = w.train_epoch(rng)["recon"]
        assert last < first

    def test_embeddings_shape(self, rng):
        ds = D.load_citation("cora")
        w = ARGAWorkload.build(ds, device=SimulatedGPU(), embed=16)
        w.train_epoch(rng)
        z = w.embeddings()
        assert z.shape == (ds.graph.num_nodes, 16)


class TestDeepGCN:
    def test_trains_and_improves(self, rng):
        ds = D.load_molhiv(num_graphs=64)
        w = DeepGCNWorkload.build(ds, device=SimulatedGPU(), num_layers=4,
                                  hidden=32, batch_size=16, lr=3e-3)
        first = w.train_epoch(rng)["loss"]
        for _ in range(4):
            last = w.train_epoch(rng)["loss"]
        assert last < first

    def test_evaluate_returns_accuracy(self, rng):
        ds = D.load_molhiv(num_graphs=48)
        w = DeepGCNWorkload.build(ds, device=SimulatedGPU(), num_layers=3,
                                  hidden=16)
        w.train_epoch(rng)
        acc = w.evaluate(ds.val_idx)
        assert 0.0 <= acc <= 1.0


class TestSTGCN:
    def test_epoch_and_eval(self, rng):
        ds = D.load_metr_la(num_steps=120)
        w = STGCNWorkload.build(ds, device=SimulatedGPU(), batch_size=4,
                                batches_per_epoch=2)
        metrics = w.train_epoch(rng)
        assert np.isfinite(metrics["loss"])
        assert np.isfinite(w.evaluate_mae(num_batches=1))

    def test_loss_decreases(self, rng):
        ds = D.load_metr_la(num_steps=160)
        w = STGCNWorkload.build(ds, device=SimulatedGPU(), batch_size=8,
                                batches_per_epoch=4, lr=3e-3)
        first = w.train_epoch(rng)["loss"]
        for _ in range(3):
            last = w.train_epoch(rng)["loss"]
        assert last < first


class TestKGNN:
    def test_low_order_trains(self, rng):
        ds = D.load_proteins(num_graphs=32)
        w = KGNNWorkload.build(ds, order=2, device=SimulatedGPU(), batch_size=16)
        metrics = w.train_epoch(rng)
        assert np.isfinite(metrics["loss"])

    def test_high_order_trains(self, rng):
        ds = D.load_proteins(num_graphs=16)
        w = KGNNWorkload.build(ds, order=3, device=SimulatedGPU(), batch_size=8)
        metrics = w.train_epoch(rng)
        assert np.isfinite(metrics["loss"])

    def test_rejects_invalid_order(self):
        ds = D.load_proteins(num_graphs=8)
        with pytest.raises(ValueError):
            KGNNWorkload.build(ds, order=4)

    def test_learns_protein_classes(self, rng):
        ds = D.load_proteins(num_graphs=64)
        w = KGNNWorkload.build(ds, order=2, device=SimulatedGPU(),
                               batch_size=32, lr=5e-3)
        first = w.train_epoch(rng)["loss"]
        for _ in range(5):
            last = w.train_epoch(rng)["loss"]
        assert last < first


class TestTreeLSTM:
    def test_batching_structure(self):
        ds = D.load_sst(num_trees=6)
        batch = batch_trees(ds.trees[:3])
        assert batch.num_nodes == sum(t.num_nodes for t in ds.trees[:3])
        roots = (batch.parent == -1).sum()
        assert roots == 3

    def test_row_lookup(self):
        universe = np.array([10, 3, 7])
        queries = np.array([7, 10])
        np.testing.assert_array_equal(row_lookup(universe, queries), [2, 0])

    def test_trains(self, rng):
        ds = D.load_sst(num_trees=32)
        w = TreeLSTMWorkload.build(ds, device=SimulatedGPU(), batch_size=16)
        metrics = w.train_epoch(rng)
        assert np.isfinite(metrics["loss"])
        assert 0.0 <= metrics["acc"] <= 1.0

    def test_loss_decreases(self, rng):
        ds = D.load_sst(num_trees=48)
        w = TreeLSTMWorkload.build(ds, device=SimulatedGPU(), batch_size=24,
                                   lr=5e-3)
        first = w.train_epoch(rng)["loss"]
        for _ in range(4):
            last = w.train_epoch(rng)["loss"]
        assert last < first


class TestGraphWriter:
    def test_trains(self, rng):
        ds = D.load_agenda(num_samples=16)
        w = GraphWriterWorkload.build(ds, device=SimulatedGPU(), dim=64,
                                      batch_size=4, batches_per_epoch=2)
        metrics = w.train_epoch(rng)
        assert np.isfinite(metrics["loss"])

    def test_loss_decreases(self, rng):
        ds = D.load_agenda(num_samples=16)
        w = GraphWriterWorkload.build(ds, device=SimulatedGPU(), dim=64,
                                      batch_size=8, batches_per_epoch=2,
                                      lr=3e-3, max_decode_steps=12)
        first = w.train_epoch(rng)["loss"]
        for _ in range(3):
            last = w.train_epoch(rng)["loss"]
        assert last < first

    def test_decode_truncation(self, rng):
        ds = D.load_agenda(num_samples=8)
        short = GraphWriterWorkload.build(ds, device=SimulatedGPU(), dim=64,
                                          batch_size=4, batches_per_epoch=1,
                                          max_decode_steps=5)
        dev = short.device
        short.train_epoch(rng)
        kernels_short = dev.stats.kernel_count
        full = GraphWriterWorkload.build(ds, device=SimulatedGPU(), dim=64,
                                         batch_size=4, batches_per_epoch=1)
        full.train_epoch(rng)
        assert full.device.stats.kernel_count > kernels_short


class TestPinSAGE:
    def test_trains(self, rng):
        w = PinSAGEWorkload.build(D.load_movielens(), device=SimulatedGPU(),
                                  batch_size=16, batches_per_epoch=2)
        metrics = w.train_epoch(rng)
        assert np.isfinite(metrics["loss"])

    def test_overfits_fixed_batches(self):
        """With a frozen batch schedule the margin loss must fall."""
        w = PinSAGEWorkload.build(D.load_movielens(), device=SimulatedGPU(),
                                  batch_size=32, batches_per_epoch=2, lr=1e-2)
        losses = [w.train_epoch(np.random.default_rng(42))["loss"]
                  for _ in range(6)]
        assert losses[-1] < losses[0]

    def test_embed_items(self, rng):
        w = PinSAGEWorkload.build(D.load_movielens(), device=SimulatedGPU(),
                                  batch_size=8, batches_per_epoch=1)
        items = np.array([0, 5, 9])
        emb = w.embed_items(items, rng)
        assert emb.shape[0] == 3
