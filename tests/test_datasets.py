"""Synthetic dataset generators: determinism, shapes, and the statistical
properties the paper's findings rely on."""

import numpy as np
import pytest

import repro.datasets as D


class TestCitation:
    def test_cora_dimensions_match_original(self):
        ds = D.load_citation("cora")
        assert ds.graph.num_nodes == 2708
        assert ds.feature_dim == 1433
        assert ds.num_classes == 7

    def test_features_are_sparse_bags(self):
        ds = D.load_citation("cora")
        sparsity = 1.0 - (ds.features != 0).mean()
        assert sparsity > 0.95  # citation bag-of-words is ~99% zeros

    def test_deterministic(self):
        a = D.load_citation("cora", seed=3)
        b = D.load_citation("cora", seed=3)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.graph.src, b.graph.src)

    def test_splits_disjoint_and_complete(self):
        ds = D.load_citation("citeseer")
        all_idx = np.concatenate([ds.train_idx, ds.val_idx, ds.test_idx])
        assert np.unique(all_idx).size == ds.graph.num_nodes

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            D.load_citation("imaginary")

    def test_community_structure_learnable(self):
        ds = D.load_citation("cora")
        same = (ds.labels[ds.graph.src] == ds.labels[ds.graph.dst]).mean()
        assert same > 0.5


class TestInteraction:
    def test_nwp_features_exactly_10x_mvl(self):
        """The ratio behind the paper's PSAGE elementwise finding."""
        mvl = D.load_movielens()
        nwp = D.load_nowplaying()
        assert nwp.feature_dim == 10 * mvl.feature_dim

    def test_nwp_catalog_larger_than_mvl(self):
        assert D.load_nowplaying().num_items > 4 * D.load_movielens().num_items

    def test_sparsity_ordering_matches_paper(self):
        """Figure 7: MVL transfers ~22% zeros, NWP ~11%."""
        mvl = (D.load_movielens().item_features == 0).mean()
        nwp = (D.load_nowplaying().item_features == 0).mean()
        assert 0.2 < mvl < 0.32
        assert 0.08 < nwp < 0.16

    def test_interactions_sorted_by_time(self):
        ds = D.load_movielens()
        assert np.all(np.diff(ds.timestamps) >= 0)

    def test_bidirectional_edge_types(self):
        g = D.load_movielens().graph
        assert ("user", "watched", "item") in g.edges
        assert ("item", "watched-by", "user") in g.edges


class TestTraffic:
    def test_sensor_count_matches_metr_la(self):
        ds = D.load_metr_la(num_steps=200)
        assert ds.graph.num_nodes == 207

    def test_missing_readings_are_zeros(self):
        ds = D.load_metr_la(num_steps=400)
        zero_frac = (ds.signal == 0).mean()
        assert 0.05 < zero_frac < 0.12

    def test_daily_periodicity(self):
        ds = D.load_metr_la(num_steps=600)
        x = ds.signal.mean(axis=1)
        x = x - x.mean()
        ac = np.correlate(x, x, mode="full")[x.size:]
        # autocorrelation peaks near the 288-step daily cycle
        assert np.argmax(ac[250:330]) + 250 == pytest.approx(288, abs=20)

    def test_temporal_view_round_trips(self):
        ds = D.load_metr_la(num_steps=120)
        sig = ds.temporal()
        assert len(sig) == 120 - ds.history - ds.horizon + 1


class TestMolecules:
    def test_label_balance_reasonable(self):
        ds = D.load_molhiv(num_graphs=128)
        assert 0.2 < ds.labels.mean() < 0.6

    def test_atom_features_mostly_zero(self):
        """OGB-style categorical features skew to category 0 (Figure 7)."""
        ds = D.load_molhiv(num_graphs=64)
        atoms = np.concatenate(ds.atom_features)
        assert (atoms == 0).mean() > 0.4

    def test_feature_cardinalities_respected(self):
        from repro.datasets.molecules import ATOM_FEATURE_DIMS

        ds = D.load_molhiv(num_graphs=32)
        atoms = np.concatenate(ds.atom_features)
        for col, dim in enumerate(ATOM_FEATURE_DIMS):
            assert atoms[:, col].max() < dim

    def test_bond_features_per_edge(self):
        ds = D.load_molhiv(num_graphs=16)
        for g, bf in zip(ds.graphs, ds.bond_features):
            assert bf.shape[0] == g.num_edges


class TestProteins:
    def test_balanced_classes(self):
        ds = D.load_proteins(num_graphs=128)
        assert 0.35 < ds.labels.mean() < 0.65

    def test_one_hot_features(self):
        ds = D.load_proteins(num_graphs=16)
        for feats in ds.node_features:
            np.testing.assert_allclose(feats.sum(axis=1), 1.0)

    def test_backbone_keeps_graphs_connected(self):
        import networkx as nx

        ds = D.load_proteins(num_graphs=8)
        for g in ds.graphs:
            nxg = nx.Graph()
            nxg.add_nodes_from(range(g.num_nodes))
            nxg.add_edges_from(zip(g.src.tolist(), g.dst.tolist()))
            assert nx.is_connected(nxg)


class TestAgenda:
    def test_triples_reference_entities(self):
        ds = D.load_agenda(num_samples=16)
        for s in ds.samples:
            if s.triples.size:
                assert s.triples[:, [0, 2]].max() < s.entities.size
                assert s.triples[:, 1].max() < 7  # NUM_RELATIONS

    def test_abstract_ends_with_eos(self):
        from repro.datasets.agenda import EOS

        ds = D.load_agenda(num_samples=8)
        assert all(s.abstract[-1] == EOS for s in ds.samples)

    def test_tokens_in_vocab(self):
        ds = D.load_agenda(num_samples=8)
        for s in ds.samples:
            assert s.abstract.max() < ds.vocab_size
            assert s.title.min() >= 3  # reserved PAD/BOS/EOS


class TestSST:
    def test_tree_invariants(self):
        ds = D.load_sst(num_trees=32)
        for tree in ds.trees:
            assert tree.num_nodes == 2 * tree.num_leaves - 1
            assert (tree.parent == -1).sum() == 1
            assert tree.labels.min() >= 0 and tree.labels.max() <= 4

    def test_depths_zero_at_leaves(self):
        ds = D.load_sst(num_trees=8)
        tree = ds.trees[0]
        depths = tree.depths()
        assert np.all(depths[tree.is_leaf] == 0)
        root = int(np.nonzero(tree.parent == -1)[0][0])
        assert depths[root] == depths.max()

    def test_label_distribution_covers_classes(self):
        ds = D.load_sst(num_trees=128)
        labels = np.concatenate([t.labels for t in ds.trees])
        assert np.unique(labels).size == 5


class TestInfoRecords:
    def test_every_dataset_documents_its_substitution(self):
        loaders = [
            lambda: D.load_citation("cora"),
            D.load_movielens,
            D.load_nowplaying,
            lambda: D.load_metr_la(num_steps=120),
            lambda: D.load_molhiv(num_graphs=8),
            lambda: D.load_proteins(num_graphs=8),
            lambda: D.load_agenda(num_samples=8),
            lambda: D.load_sst(num_trees=8),
        ]
        for load in loaders:
            info = load().info
            assert info.substitutes_for
            assert 0 < info.scale <= 1.0
