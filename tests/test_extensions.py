"""The paper's future-work extensions: fp16 training, transfer compression,
weak scaling, time-to-train, inference profiling."""

import json

import numpy as np
import pytest

from repro.core import profile_inference, profile_workload, registry
from repro.gpu import (
    KernelDescriptor,
    OpClass,
    SimulatedGPU,
    SimulationConfig,
    compress,
)
from repro.gpu.compression import rle_bytes, zvc_bytes
from repro.train import Trainer, run_weak_scaling_point


class TestCompression:
    def test_zvc_all_zero(self):
        arr = np.zeros(1024, dtype=np.float32)
        result = compress(arr, "zvc")
        assert result.compressed_bytes == 1024 // 8  # mask only
        assert result.ratio == pytest.approx(32.0)

    def test_zvc_dense_falls_back_near_raw(self):
        arr = np.ones(1024, dtype=np.float32)
        result = compress(arr, "zvc")
        assert result.compressed_bytes <= arr.nbytes  # never expands
        assert result.ratio < 1.05

    def test_zvc_half_sparse(self):
        arr = np.zeros(1000, dtype=np.float32)
        arr[::2] = 1.0
        assert compress(arr, "zvc").ratio == pytest.approx(
            4000 / (125 + 500 * 4), rel=0.01
        )

    def test_rle_wins_on_long_runs(self):
        arr = np.zeros(10_000, dtype=np.float32)
        arr[:10] = 1.0
        assert rle_bytes(arr) < zvc_bytes(arr)

    def test_adaptive_picks_best(self):
        for arr in (np.zeros(4096, dtype=np.float32),
                    np.random.default_rng(0).normal(size=4096).astype(np.float32)):
            adaptive = compress(arr, "adaptive").compressed_bytes
            assert adaptive <= zvc_bytes(arr)
            assert adaptive <= min(rle_bytes(arr), arr.nbytes)

    def test_unknown_scheme_raises(self):
        with pytest.raises(ValueError):
            compress(np.zeros(4), "gzip")

    def test_device_compressed_transfer_faster(self):
        sparse = np.zeros(1 << 20, dtype=np.float32)
        plain = SimulatedGPU()
        compressed = SimulatedGPU(SimulationConfig(transfer_compression="zvc"))
        rec_plain = plain.h2d(sparse)
        rec_zvc = compressed.h2d(sparse)
        assert rec_zvc.duration_s < 0.2 * rec_plain.duration_s
        assert rec_zvc.wire_bytes < rec_zvc.nbytes
        assert rec_zvc.compression_ratio > 5
        # measured sparsity is about the logical buffer, not the wire
        assert rec_zvc.sparsity == rec_plain.sparsity == 1.0

    def test_dense_transfer_unaffected(self):
        dense = np.ones(1 << 16, dtype=np.float32)
        dev = SimulatedGPU(SimulationConfig(transfer_compression="adaptive"))
        rec = dev.h2d(dense)
        assert rec.wire_bytes <= rec.nbytes


class TestHalfPrecision:
    def _mem_bound_desc(self):
        return KernelDescriptor(
            name="stream", op_class=OpClass.ELEMENTWISE, threads=1 << 20,
            int32_iops=float(1 << 22),
            bytes_read=float(128 << 20), bytes_written=float(64 << 20),
        )

    def test_fp16_speeds_up_memory_bound_kernels(self):
        fp32 = SimulatedGPU().launch(self._mem_bound_desc())
        fp16 = SimulatedGPU(SimulationConfig(precision="fp16")).launch(
            self._mem_bound_desc()
        )
        assert fp16.duration_s < 0.75 * fp32.duration_s

    def test_fp16_raises_l1_hit_rate(self):
        """The paper's suggested mitigation for the 15% L1 hit rate."""
        desc = KernelDescriptor(
            name="k", op_class=OpClass.ELEMENTWISE, threads=1 << 16,
            bytes_read=float(40 << 20), bytes_written=float(10 << 20),
            reuse_factor=2.0,
        )
        fp32 = SimulatedGPU().launch(desc)
        fp16 = SimulatedGPU(SimulationConfig(precision="fp16")).launch(desc)
        assert fp16.memory.l1_hit_rate >= fp32.memory.l1_hit_rate

    def test_fp16_doubles_compute_bound_throughput(self):
        desc = KernelDescriptor(
            name="gemm", op_class=OpClass.GEMM, threads=1 << 21,
            fp32_flops=4e10, bytes_read=float(64 << 20),
            bytes_written=float(16 << 20),
        )
        fp32 = SimulatedGPU().launch(desc)
        fp16 = SimulatedGPU(SimulationConfig(precision="fp16")).launch(desc)
        assert fp16.gflops == pytest.approx(2 * fp32.gflops, rel=0.15)

    def test_sort_traffic_not_scaled(self):
        """Integer key traffic does not shrink at fp16."""
        desc = KernelDescriptor(
            name="sort", op_class=OpClass.SORT, threads=1 << 18,
            int32_iops=1e8, bytes_read=float(64 << 20),
            bytes_written=float(64 << 20),
        )
        fp32 = SimulatedGPU().launch(desc)
        fp16 = SimulatedGPU(SimulationConfig(precision="fp16")).launch(desc)
        assert fp16.duration_s == pytest.approx(fp32.duration_s, rel=0.05)

    def test_fp16_workload_epoch_faster(self):
        base = profile_workload("DGCN", scale="test", epochs=1)
        half = profile_workload("DGCN", scale="test", epochs=1,
                                sim=SimulationConfig(precision="fp16"))
        assert half.kernels.total_time_s < base.kernels.total_time_s


class TestWeakScaling:
    def test_single_gpu_baseline(self):
        point = run_weak_scaling_point("KGNNL", 1, scale="test")
        assert point.allreduce_time_s == 0.0

    def test_efficiency_below_one_but_close(self):
        one = run_weak_scaling_point("KGNNL", 1, scale="test")
        four = run_weak_scaling_point("KGNNL", 4, scale="test")
        efficiency = one.epoch_time_s / four.epoch_time_s
        assert 0.5 < efficiency <= 1.0

    def test_per_device_compute_constant(self):
        one = run_weak_scaling_point("TLSTM", 1, scale="test")
        four = run_weak_scaling_point("TLSTM", 4, scale="test")
        assert four.compute_time_s == pytest.approx(one.compute_time_s,
                                                    rel=0.25)

    def test_arga_still_excluded(self):
        with pytest.raises(ValueError):
            run_weak_scaling_point("ARGA", 2)


class TestTimeToTrain:
    def _trainer(self):
        device = SimulatedGPU()
        workload = registry.get("KGNNL").build(device=device, scale="test")
        return Trainer(workload=workload, device=device)

    def test_reaches_loss_target(self):
        result = self._trainer().train_to_target("loss", 0.69, mode="min",
                                                 max_epochs=30)
        assert result.converged
        assert result.achieved <= 0.69
        assert result.sim_time_s > 0
        assert result.epochs <= 30

    def test_unreachable_target_flagged(self):
        result = self._trainer().train_to_target("loss", 0.0, mode="min",
                                                 max_epochs=2)
        assert not result.converged
        assert result.epochs == 2

    def test_max_mode(self):
        result = self._trainer().train_to_target("acc", 0.1, mode="max",
                                                 max_epochs=10)
        assert result.converged

    def test_bad_metric_raises(self):
        with pytest.raises(KeyError):
            self._trainer().train_to_target("bleu", 1.0, max_epochs=1)

    def test_bad_mode_raises(self):
        with pytest.raises(ValueError):
            self._trainer().train_to_target("loss", 1.0, mode="between")


class TestInferenceProfiling:
    def test_inference_has_no_backward_or_optimizer(self):
        profile = profile_inference("KGNNL", scale="test")
        phases = profile.kernels.phase_breakdown()
        assert set(phases) == {"forward"}

    def test_inference_cheaper_than_training(self):
        train = profile_workload("TLSTM", scale="test", epochs=1)
        infer = profile_inference("TLSTM", scale="test")
        assert infer.kernels.total_time_s < train.kernels.total_time_s

    def test_all_workloads_have_inference_paths(self):
        for key in registry.WORKLOAD_KEYS:
            profile = profile_inference(key, scale="test")
            assert profile.launch_count > 0, key


class TestMemoryFootprint:
    def test_arga_graph_dominates_memory(self):
        """The paper: the input graph can occupy up to 90% of GPU memory."""
        profile = profile_workload("ARGA", scale="test", epochs=1)
        mem = profile.memory_footprint()
        assert mem["data_fraction"] > 0.9
        assert mem["model_bytes"] > 0

    def test_footprint_keys_and_bounds(self):
        profile = profile_workload("KGNNL", scale="test", epochs=1)
        mem = profile.memory_footprint()
        assert set(mem) == {"model_bytes", "data_bytes_per_epoch",
                            "data_fraction"}
        assert 0.0 <= mem["data_fraction"] <= 1.0

    def test_model_bytes_include_adam_state(self):
        profile = profile_workload("TLSTM", scale="test", epochs=1)
        params = profile._workload.model.parameter_bytes()
        assert profile.memory_footprint()["model_bytes"] == 3 * params


class TestCLI:
    def test_table1_command(self, capsys):
        from repro.__main__ import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "PinSAGE" in out

    def test_profile_command(self, capsys):
        from repro.__main__ import main

        assert main(["profile", "KGNNL", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "KGNNL" in out and "us" in out

    def test_profile_without_workload_profiles_suite(self, capsys, tmp_path):
        from repro.__main__ import main
        from repro.core import executor

        # stub the engine: this tests the CLI wiring, not the (already
        # covered) characterization itself
        calls = {}

        def fake_run_suite(scale=None, epochs=1, seed=0, strict=False,
                           jobs=None, cache=None):
            from repro.core.characterize import SuiteProfile

            calls.update(scale=scale, jobs=jobs, cache=cache)
            return SuiteProfile()

        original = executor.run_suite
        executor.run_suite = fake_run_suite
        try:
            assert main(["profile", "--scale", "test", "--jobs", "3",
                         "--no-cache"]) == 0
        finally:
            executor.run_suite = original
        assert calls == {"scale": "test", "jobs": 3, "cache": False}

    def test_profile_suite_mode_end_to_end(self, capsys, monkeypatch):
        """Unstubbed suite-mode profile over a two-workload registry slice."""
        from repro.__main__ import main
        from repro.core import registry

        keys = ("TLSTM", "KGNNL")
        monkeypatch.setattr(registry, "WORKLOAD_KEYS", keys)
        assert main(["profile", "--scale", "test", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "== TLSTM" in out and "== KGNNL" in out

    def test_bench_command_writes_report(self, capsys, tmp_path,
                                         monkeypatch):
        from repro import __main__ as cli

        fake = {"suite": ["TLSTM"], "scale": "test", "epochs": 1, "jobs": 2,
                "cold_serial_s": 1.0, "cold_parallel_s": 0.6,
                "warm_cache_s": 0.01, "warm_cache_hits": 1,
                "parallel_speedup": 1.67, "warm_speedup": 100.0}
        monkeypatch.setattr(cli.executor, "benchmark_suite",
                            lambda **kw: fake)
        out_path = tmp_path / "BENCH_suite.json"
        assert cli.main(["bench", "--quick", "--output", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        assert report["warm_speedup"] == 100.0
        assert "warm cache" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])
