"""CLI tests for the single-workload bench hot path (``bench --workload``)."""

import json

import pytest

from tests.cli_helpers import run_cli


class TestBenchWorkloadFlag:
    def test_single_workload_hotpath_report(self, capsys, tmp_path):
        out_path = tmp_path / "hotpath.json"
        res = run_cli(["bench", "--workload", "kgnnl", "--quick",
                       "--capture-replay",
                       "--hotpath-output", str(out_path)], capsys)
        assert res.code == 0
        report = json.loads(out_path.read_text())
        # filtered to exactly the requested workload — no suite-level pass
        assert report["suite"] == ["KGNNL"]
        assert list(report["workloads"]) == ["KGNNL"]
        assert report["capture_replay"] is True
        assert report["fuse"] is False
        row = report["workloads"]["KGNNL"]
        assert row["mode"] == "capture-replay"
        assert row["state"] == "replay"
        assert row["replayed_epochs"] >= 1
        assert row["warm_epochs_per_s"] > 0
        assert row["cold_epochs_per_s"] > 0
        assert row["speedup"] == pytest.approx(
            row["warm_epochs_per_s"] / row["cold_epochs_per_s"])
        assert "mode=capture-replay" in res.out
        assert "KGNNL" in res.out
        # single-workload mode skips the suite bench entirely
        assert "cold serial" not in res.out

    def test_dispatch_mode_row_shape(self, capsys, tmp_path):
        out_path = tmp_path / "hotpath.json"
        res = run_cli(["bench", "--workload", "KGNNL", "--quick",
                       "--hotpath-output", str(out_path)], capsys)
        assert res.code == 0
        report = json.loads(out_path.read_text())
        assert report["capture_replay"] is False
        row = report["workloads"]["KGNNL"]
        assert row["mode"] == "dispatch"
        assert "replayed" in res.out

    def test_unknown_workload_rejected(self, capsys, tmp_path):
        res = run_cli(["bench", "--workload", "nope", "--quick",
                       "--hotpath-output", str(tmp_path / "x.json")], capsys)
        assert res.code != 0
        assert "unknown workload" in res.err

    def test_baseline_gate_failure_propagates(self, capsys, tmp_path):
        out_path = tmp_path / "hotpath.json"
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"speedup": 1e9}))
        res = run_cli(["bench", "--workload", "KGNNL", "--quick",
                       "--capture-replay",
                       "--hotpath-output", str(out_path),
                       "--baseline", str(baseline)], capsys)
        assert res.code == 1
        assert "REGRESSION" in res.out
