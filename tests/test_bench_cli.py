"""CLI tests for the single-workload bench hot path (``bench --workload``)."""

import json

import pytest

from repro import __main__ as cli


class TestBenchWorkloadFlag:
    def test_single_workload_hotpath_report(self, capsys, tmp_path):
        out_path = tmp_path / "hotpath.json"
        rc = cli.main(["bench", "--workload", "kgnnl", "--quick",
                       "--capture-replay",
                       "--hotpath-output", str(out_path)])
        assert rc == 0
        report = json.loads(out_path.read_text())
        # filtered to exactly the requested workload — no suite-level pass
        assert report["suite"] == ["KGNNL"]
        assert list(report["workloads"]) == ["KGNNL"]
        assert report["capture_replay"] is True
        assert report["fuse"] is False
        row = report["workloads"]["KGNNL"]
        assert row["mode"] == "capture-replay"
        assert row["state"] == "replay"
        assert row["replayed_epochs"] >= 1
        assert row["warm_epochs_per_s"] > 0
        assert row["cold_epochs_per_s"] > 0
        assert row["speedup"] == pytest.approx(
            row["warm_epochs_per_s"] / row["cold_epochs_per_s"])
        out = capsys.readouterr().out
        assert "mode=capture-replay" in out
        assert "KGNNL" in out
        # single-workload mode skips the suite bench entirely
        assert "cold serial" not in out

    def test_dispatch_mode_row_shape(self, capsys, tmp_path):
        out_path = tmp_path / "hotpath.json"
        rc = cli.main(["bench", "--workload", "KGNNL", "--quick",
                       "--hotpath-output", str(out_path)])
        assert rc == 0
        report = json.loads(out_path.read_text())
        assert report["capture_replay"] is False
        row = report["workloads"]["KGNNL"]
        assert row["mode"] == "dispatch"
        assert "replayed" in capsys.readouterr().out

    def test_unknown_workload_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown workload"):
            cli.main(["bench", "--workload", "nope", "--quick",
                      "--hotpath-output", str(tmp_path / "x.json")])

    def test_baseline_gate_failure_propagates(self, capsys, tmp_path):
        out_path = tmp_path / "hotpath.json"
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"speedup": 1e9}))
        rc = cli.main(["bench", "--workload", "KGNNL", "--quick",
                      "--capture-replay",
                      "--hotpath-output", str(out_path),
                      "--baseline", str(baseline)])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out
