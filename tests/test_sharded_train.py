"""Partition-invariance and capacity-asymmetry tests for sharded training.

Two promises anchor the shard subsystem.  Numerically, partitioned
full-batch GCN training is the same computation as whole-graph training:
per-part forward rows are bitwise equal to the whole-matrix rows (CSR row
slicing preserves per-row column order) and per-part gradients sum to the
full-batch gradient by linearity, so 1/2/4-part runs agree to fp64
rounding.  Capacity-wise, sharding is what makes an over-HBM graph
trainable at all: the same graph that OOMs a single simulated device in
strict mode fits when split over four, or when staged out-of-core.
"""

import numpy as np
import pytest

from repro.gpu.memory import OOMError
from repro.train import sharded
from repro.train.sharded import part_geometries, shard_run, train_numeric

#: small enough for fp64 reference math, large enough for real halos
SMALL = dict(nodes=768, feat_dim=48, seed=0)
HIDDEN = 16

#: adjacency + features alone exceed the 16 GiB HBM of one simulated device
BIG = dict(nodes=600_000, feat_dim=8192, seed=0)
HBM_BYTES = 16 * (1 << 30)


def _dataset():
    return sharded._shard_dataset(SMALL["nodes"], SMALL["feat_dim"],
                                  SMALL["seed"])


def _plan(parts):
    return sharded._shard_plan(SMALL["nodes"], SMALL["feat_dim"],
                               SMALL["seed"], parts, "bfs", 1.05)


class TestNumericEquivalence:
    def test_partitioned_matches_whole_graph(self):
        ds = _dataset()
        ref = train_numeric(ds, _plan(1), HIDDEN, epochs=3, lr=0.2, seed=0)
        for parts in (2, 4):
            got = train_numeric(ds, _plan(parts), HIDDEN, epochs=3, lr=0.2,
                                seed=0)
            np.testing.assert_allclose(got["losses"], ref["losses"],
                                       rtol=0, atol=1e-12)
            for key in ref["grads"]:
                np.testing.assert_allclose(got["grads"][key],
                                           ref["grads"][key],
                                           rtol=0, atol=1e-10)
            for key in ref["params"]:
                np.testing.assert_allclose(got["params"][key],
                                           ref["params"][key],
                                           rtol=0, atol=1e-10)

    def test_shard_run_reports_reference_losses(self):
        report, _ = shard_run("ARGA", parts=2, hidden=HIDDEN, epochs=2,
                              **SMALL)
        ref = train_numeric(_dataset(), _plan(2), HIDDEN, epochs=2, lr=0.2,
                            seed=0)
        assert report["mode"] == "numeric"
        assert report["losses"] == pytest.approx(ref["losses"], abs=1e-15)
        assert report["loss_final"] == report["losses"][-1]

    def test_offload_reports_parallel_losses(self):
        par, _ = shard_run("ARGA", parts=4, hidden=HIDDEN, epochs=2, **SMALL)
        off, _ = shard_run("ARGA", parts=4, offload=True, hidden=HIDDEN,
                           epochs=2, **SMALL)
        # same plan, same math — only the execution schedule differs
        assert off["losses"] == par["losses"]
        assert par["gpus"] == 4 and off["gpus"] == 1
        assert off["offload"] and not par["offload"]
        # staging every partition through the host moves far more PCIe bytes
        assert off["h2d_bytes"] > par["h2d_bytes"]
        # and out-of-core trades the NVLink halo traffic away entirely
        assert par["halo_bytes"] > 0 and off["halo_bytes"] == 0

    def test_part_geometries_cover_graph(self):
        ds = _dataset()
        geoms = part_geometries(ds.graph, _plan(4), ds.train_idx)
        assert sum(g.n_owned for g in geoms) == ds.graph.num_nodes
        assert sum(g.n_train for g in geoms) == ds.train_idx.size
        # every halo replica has exactly one owner exporting it
        assert sum(g.n_halo for g in geoms) == sum(g.rev_halo for g in geoms)
        for g in geoms:
            assert g.n_local == g.n_owned + g.n_halo
            assert g.nnz >= g.n_owned  # self-loops guarantee one nnz per row


class TestCapacityAsymmetry:
    def test_whole_graph_oomes_under_strict(self):
        with pytest.raises(OOMError):
            shard_run("ARGA", parts=1, hidden=64, epochs=1, mode="capacity",
                      strict=True, **BIG)

    def test_four_parts_fit_under_strict(self):
        report, _ = shard_run("ARGA", parts=4, hidden=64, epochs=1,
                              mode="capacity", strict=True, **BIG)
        assert report["oom_events"] == 0
        assert 0 < report["peak_reserved_bytes"] <= HBM_BYTES

    def test_offload_fits_under_strict(self):
        report, _ = shard_run("ARGA", parts=4, offload=True, hidden=64,
                              epochs=1, mode="capacity", strict=True, **BIG)
        assert report["oom_events"] == 0
        assert report["gpus"] == 1
        assert 0 < report["peak_reserved_bytes"] <= HBM_BYTES

    def test_whole_graph_records_oom_when_not_strict(self):
        report, _ = shard_run("ARGA", parts=1, hidden=64, epochs=1,
                              mode="capacity", strict=False, **BIG)
        assert report["oom_events"] >= 1
        assert report["peak_reserved_bytes"] > HBM_BYTES
