"""Multi-GPU system and NVLink allreduce model."""

import pytest

from repro.gpu import MultiGPUSystem


class TestConstruction:
    def test_device_ids(self):
        system = MultiGPUSystem(4)
        assert [d.device_id for d in system.devices] == [0, 1, 2, 3]
        assert len(system) == 4

    def test_rejects_zero_devices(self):
        with pytest.raises(ValueError):
            MultiGPUSystem(0)

    def test_indexing(self):
        system = MultiGPUSystem(2)
        assert system[1] is system.devices[1]


class TestAllReduce:
    def test_single_gpu_is_free(self):
        assert MultiGPUSystem(1).allreduce_cost(1 << 30).duration_s == 0.0

    def test_cost_grows_with_bytes(self):
        system = MultiGPUSystem(4)
        small = system.allreduce_cost(1 << 20).duration_s
        large = system.allreduce_cost(1 << 28).duration_s
        assert large > small

    def test_ring_wire_volume(self):
        """2(N-1)/N of the buffer crosses the wire: 4 GPUs move more than 2."""
        two = MultiGPUSystem(2).allreduce_cost(256 << 20).duration_s
        four = MultiGPUSystem(4).allreduce_cost(256 << 20).duration_s
        assert four > two

    def test_latency_floor_for_tiny_buffers(self):
        cost = MultiGPUSystem(4).allreduce_cost(1024)
        # 6 pipeline hops x 9us + bucket overhead
        assert cost.duration_s > 50e-6

    def test_bucket_count(self):
        system = MultiGPUSystem(2)
        assert system.allreduce_cost(60 << 20).num_buckets == 3

    def test_allreduce_advances_all_clocks_equally(self):
        system = MultiGPUSystem(2)
        system.devices[0].clock_s = 1.0
        system.devices[1].clock_s = 3.0
        duration = system.allreduce(1 << 20)
        assert duration > 0
        assert system.devices[0].clock_s == system.devices[1].clock_s
        assert system.devices[0].clock_s == pytest.approx(3.0 + duration)


class TestBarrier:
    def test_barrier_aligns_on_slowest(self):
        system = MultiGPUSystem(3)
        system.devices[2].clock_s = 5.0
        now = system.barrier()
        assert now == 5.0
        assert all(d.clock_s == 5.0 for d in system.devices)
        assert all(d.host_clock_s == 5.0 for d in system.devices)

    def test_elapsed_is_max(self):
        system = MultiGPUSystem(2)
        system.devices[1].clock_s = 2.5
        assert system.elapsed_s() == 2.5

    def test_reset(self):
        system = MultiGPUSystem(2)
        system.devices[0].clock_s = 9.0
        system.reset()
        assert system.elapsed_s() == 0.0
