"""Hypothesis property suite for the edge-cut partitioner.

Invariants sharded training rests on: every node is owned by exactly one
part, part sizes respect the declared balance cap, the recorded edge cut
matches a recount from the assignment, each halo is exactly the set of
out-of-part in-neighbors of the part's owned nodes, and the whole plan
replays byte-identically from its ``[seed, num_parts, method]`` spawn key.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import generators, partition_graph, plan_digest


def _graph(seed):
    g, _ = generators.stochastic_block_model(
        [30, 30, 30], 0.15, 0.02, np.random.default_rng(seed))
    return g


graph_seeds = st.integers(0, 200)
part_counts = st.integers(1, 6)
methods = st.sampled_from(["bfs", "greedy"])
refines = st.integers(0, 4)
balances = st.sampled_from([1.0, 1.05, 1.2])
seeds = st.integers(0, 10**6)


class TestPartitionProperties:
    @given(graph_seeds, part_counts, methods, refines, seeds)
    @settings(max_examples=25, deadline=None)
    def test_every_node_owned_exactly_once(self, gseed, num_parts, method,
                                           refine, seed):
        g = _graph(gseed)
        plan = partition_graph(g, num_parts, method=method, seed=seed,
                               refine=refine)
        owned = np.concatenate(plan.parts)
        assert owned.size == g.num_nodes
        np.testing.assert_array_equal(np.sort(owned), np.arange(g.num_nodes))
        for p, nodes in enumerate(plan.parts):
            np.testing.assert_array_equal(plan.assignment[nodes], p)

    @given(graph_seeds, part_counts, methods, refines, balances, seeds)
    @settings(max_examples=25, deadline=None)
    def test_part_sizes_respect_balance_cap(self, gseed, num_parts, method,
                                            refine, balance, seed):
        g = _graph(gseed)
        plan = partition_graph(g, num_parts, method=method, balance=balance,
                               seed=seed, refine=refine)
        cap = int(math.ceil(g.num_nodes / num_parts * balance))
        sizes = plan.part_sizes()
        assert max(sizes) <= cap
        assert min(sizes) >= 1  # refinement never empties a part
        assert plan.achieved_balance == max(sizes) / (g.num_nodes / num_parts)

    @given(graph_seeds, part_counts, methods, refines, seeds)
    @settings(max_examples=25, deadline=None)
    def test_edge_cut_matches_recount(self, gseed, num_parts, method,
                                      refine, seed):
        g = _graph(gseed)
        plan = partition_graph(g, num_parts, method=method, seed=seed,
                               refine=refine)
        recount = int((plan.assignment[g.src] != plan.assignment[g.dst]).sum())
        assert plan.edge_cut == recount
        assert plan.cut_fraction == recount / g.num_edges
        if num_parts == 1:
            assert recount == 0

    @given(graph_seeds, part_counts, methods, refines, seeds)
    @settings(max_examples=25, deadline=None)
    def test_halos_are_exactly_foreign_in_neighbors(self, gseed, num_parts,
                                                    method, refine, seed):
        g = _graph(gseed)
        plan = partition_graph(g, num_parts, method=method, seed=seed,
                               refine=refine)
        src_part = plan.assignment[g.src]
        dst_part = plan.assignment[g.dst]
        cut = src_part != dst_part
        for p in range(num_parts):
            expected = np.unique(g.src[cut & (dst_part == p)])
            np.testing.assert_array_equal(plan.halos[p], expected)
            # a halo node is never owned by the part that replicates it
            assert np.intersect1d(plan.halos[p], plan.parts[p]).size == 0

    @given(graph_seeds, part_counts, methods, refines, seeds)
    @settings(max_examples=15, deadline=None)
    def test_plans_replay_byte_identically(self, gseed, num_parts, method,
                                           refine, seed):
        g = _graph(gseed)
        first = partition_graph(g, num_parts, method=method, seed=seed,
                                refine=refine)
        again = partition_graph(g, num_parts, method=method, seed=seed,
                                refine=refine)
        assert first.assignment.tobytes() == again.assignment.tobytes()
        assert plan_digest(first) == plan_digest(again)
        assert first.describe() == again.describe()
